(* Guest kernel + service behaviour: boot/shutdown contention, the
   suspend/resume freeze semantics, and the cache lifecycle. *)
open Helpers
module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain
module Kernel = Guest.Kernel
module Service = Guest.Service
module Engine = Simkit.Engine

let gib = Simkit.Units.gib

let booted_vmm () =
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Vmm.create host in
  run_task engine (Vmm.power_on vmm);
  (engine, host, vmm)

let fresh_vm engine vmm ~name =
  let result = ref None in
  Vmm.create_domain vmm ~name ~mem_bytes:(gib 1) (fun r -> result := Some r);
  Engine.run engine;
  match !result with
  | Some (Ok d) -> (d, Kernel.create vmm d ())
  | _ -> Alcotest.fail "create_domain failed"

let test_boot_runs_domain () =
  let engine, _host, vmm = booted_vmm () in
  let d, kernel = fresh_vm engine vmm ~name:"vm01" in
  check_false "not running yet" (Kernel.is_running kernel);
  let duration = task_duration engine (Kernel.boot kernel) in
  check_true "running" (Kernel.is_running kernel);
  check_true "domain state" (Domain.state d = Domain.Running);
  (* boot(1) = 3.4 + 2.8 with no services. *)
  check_close ~tolerance:0.02 "boot time" 6.2 duration

let test_parallel_boot_contention () =
  (* boot(n) = 3.4 n + 2.8: the Section 5.6 shape. *)
  let boot_n n =
    let engine, _host, vmm = booted_vmm () in
    let kernels =
      List.init n (fun i ->
          snd (fresh_vm engine vmm ~name:(Printf.sprintf "vm%02d" i)))
    in
    task_duration engine (Simkit.Process.par (List.map Kernel.boot kernels))
  in
  check_close ~tolerance:0.03 "n=1" 6.2 (boot_n 1);
  check_close ~tolerance:0.03 "n=4" ((3.4 *. 4.0) +. 2.8) (boot_n 4);
  check_close ~tolerance:0.03 "n=8" ((3.4 *. 8.0) +. 2.8) (boot_n 8)

let test_boot_starts_services () =
  let engine, _host, vmm = booted_vmm () in
  let _d, kernel = fresh_vm engine vmm ~name:"vm01" in
  let sshd = Guest.Sshd.install kernel in
  check_true "down before boot" (Service.state sshd = Service.Down);
  run_task engine (Kernel.boot kernel);
  check_true "up after boot" (Service.is_up sshd);
  check_true "reachable" (Kernel.service_reachable kernel sshd)

let test_shutdown_stops_services () =
  let engine, _host, vmm = booted_vmm () in
  let d, kernel = fresh_vm engine vmm ~name:"vm01" in
  let sshd = Guest.Sshd.install kernel in
  run_task engine (Kernel.boot kernel);
  run_task engine (Kernel.shutdown kernel);
  check_true "halted" (Domain.state d = Domain.Halted);
  check_true "service down" (Service.state sshd = Service.Down);
  check_false "unreachable" (Kernel.service_reachable kernel sshd)

let test_boot_clears_page_cache () =
  let engine, _host, vmm = booted_vmm () in
  let _d, kernel = fresh_vm engine vmm ~name:"vm01" in
  run_task engine (Kernel.boot kernel);
  let fs = Kernel.filesystem kernel in
  let f = Guest.Filesystem.create_file fs ~bytes:(Simkit.Units.mib 16) () in
  Guest.Filesystem.warm_file fs f;
  check_float "cached" 1.0 (Guest.Filesystem.cached_fraction fs f);
  run_task engine (Kernel.reboot_os kernel);
  check_float "cache lost on OS reboot" 0.0
    (Guest.Filesystem.cached_fraction fs f)

let test_suspend_freezes_services_resume_unfreezes () =
  let engine, _host, vmm = booted_vmm () in
  let d, kernel = fresh_vm engine vmm ~name:"vm01" in
  let sshd = Guest.Sshd.install kernel in
  run_task engine (Kernel.boot kernel);
  run_task engine (Vmm.suspend_all_on_memory vmm);
  check_true "suspended" (Domain.state d = Domain.Suspended);
  check_false "service looks down while frozen" (Service.is_up sshd);
  check_false "unreachable while frozen"
    (Kernel.service_reachable kernel sshd);
  let resumed = ref None in
  Vmm.resume_domain_on_memory vmm d (fun r -> resumed := Some r);
  Engine.run engine;
  check_true "resume ok" (!resumed = Some (Ok ()));
  check_true "service back without restart" (Service.is_up sshd);
  check_true "reachable again" (Kernel.service_reachable kernel sshd)

let test_suspend_resume_preserves_cache () =
  (* The warm-VM reboot performance story at the kernel level. *)
  let engine, _host, vmm = booted_vmm () in
  let d, kernel = fresh_vm engine vmm ~name:"vm01" in
  run_task engine (Kernel.boot kernel);
  let fs = Kernel.filesystem kernel in
  let f = Guest.Filesystem.create_file fs ~bytes:(Simkit.Units.mib 16) () in
  Guest.Filesystem.warm_file fs f;
  run_task engine (Vmm.suspend_all_on_memory vmm);
  let resumed = ref None in
  Vmm.resume_domain_on_memory vmm d (fun r -> resumed := Some r);
  Engine.run engine;
  check_true "resumed" (!resumed = Some (Ok ()));
  check_float "cache intact" 1.0 (Guest.Filesystem.cached_fraction fs f)

let test_service_lifecycle () =
  let engine, _host, vmm = booted_vmm () in
  let _d, kernel = fresh_vm engine vmm ~name:"vm01" in
  let svc =
    Kernel.make_service kernel
      { Service.service_name = "test"; start_shared_work = 0.0;
        start_private_s = 1.0; stop_private_s = 0.5 }
  in
  let transitions = ref [] in
  Service.on_transition svc (fun s -> transitions := s :: !transitions);
  run_task engine (Service.start svc);
  run_task engine (Service.stop svc);
  check_true "sequence"
    (List.rev !transitions
    = [ Service.Starting; Service.Up; Service.Stopping; Service.Down ])

let test_service_start_idempotent () =
  let engine, _host, vmm = booted_vmm () in
  let _d, kernel = fresh_vm engine vmm ~name:"vm01" in
  let svc = Guest.Sshd.install kernel in
  run_task engine (Service.start svc);
  check_float "second start instant" 0.0
    (task_duration engine (Service.start svc))

let test_service_downtime_accounting () =
  let engine, _host, vmm = booted_vmm () in
  let _d, kernel = fresh_vm engine vmm ~name:"vm01" in
  let svc =
    Kernel.make_service kernel
      { Service.service_name = "t"; start_shared_work = 0.0;
        start_private_s = 2.0; stop_private_s = 1.0 }
  in
  run_task engine (Service.start svc);
  let up_at = Engine.now engine in
  ignore
    (Engine.schedule engine ~delay:10.0 (fun () ->
         Simkit.Process.run (Service.stop svc) (fun () ->
             ignore
               (Engine.schedule engine ~delay:5.0 (fun () ->
                    Simkit.Process.run (Service.start svc) (fun () -> ()))))));
  Engine.run engine;
  let now = Engine.now engine in
  (* Down from up_at+11 (stop completes) until up_at+18 (start after 5 s
     gap + 2 s start), but Stopping also counts as not-Up: 10..18. *)
  check_float ~eps:1e-6 "downtime" 8.0
    (Service.total_downtime svc ~since:up_at ~now)

let test_jboss_heavier_than_sshd () =
  let start_time install =
    let engine, _host, vmm = booted_vmm () in
    let _d, kernel = fresh_vm engine vmm ~name:"vm01" in
    let svc = install kernel in
    task_duration engine (Service.start svc)
  in
  let sshd = start_time Guest.Sshd.install in
  let jboss = start_time Guest.Jboss.install in
  check_true "jboss much slower" (jboss > 10.0 *. sshd);
  check_close ~tolerance:0.05 "jboss ~16.5 s alone" 16.5 jboss

let test_httpd_serves_through_cache () =
  let engine, host, vmm = booted_vmm () in
  let _d, kernel = fresh_vm engine vmm ~name:"vm01" in
  let httpd = Guest.Httpd.install kernel ~nic:host.Hw.Host.nic () in
  ignore
    (Guest.Httpd.populate httpd ~file_count:10
       ~file_bytes:(Simkit.Units.kib 512));
  run_task engine (Kernel.boot kernel);
  Guest.Httpd.warm_all httpd;
  let rng = Simkit.Rng.create 1 in
  let ok = ref None in
  Guest.Httpd.handle_request httpd ~rng (fun r -> ok := Some r);
  Engine.run engine;
  check_true "served" (!ok = Some true);
  check_int "counted" 1 (Guest.Httpd.requests_served httpd)

let test_httpd_refuses_when_down () =
  let engine, host, vmm = booted_vmm () in
  let _d, kernel = fresh_vm engine vmm ~name:"vm01" in
  let httpd = Guest.Httpd.install kernel ~nic:host.Hw.Host.nic () in
  ignore
    (Guest.Httpd.populate httpd ~file_count:1
       ~file_bytes:(Simkit.Units.kib 512));
  (* Not booted: connection refused, synchronously. *)
  let rng = Simkit.Rng.create 1 in
  let ok = ref None in
  Guest.Httpd.handle_request httpd ~rng (fun r -> ok := Some r);
  check_true "refused" (!ok = Some false);
  ignore engine

let test_suspend_event_delivered_via_channel () =
  (* Section 4.2: the VMM (not dom0) sends the suspend event to each
     domain U — through the port the guest kernel bound at boot. *)
  let engine, _host, vmm = booted_vmm () in
  let d, kernel = fresh_vm engine vmm ~name:"vm01" in
  run_task engine (Kernel.boot kernel);
  (match Domain.suspend_port d with
  | Some port ->
    check_true "bound at boot"
      (Xenvmm.Event_channel.status (Vmm.channels vmm) port
      = Xenvmm.Event_channel.Bound)
  | None -> Alcotest.fail "expected a suspend port");
  run_task engine (Vmm.suspend_all_on_memory vmm);
  check_true "suspended" (Domain.state d = Domain.Suspended);
  let resumed = ref None in
  Vmm.resume_domain_on_memory vmm d (fun r -> resumed := Some r);
  Engine.run engine;
  check_true "resumed" (!resumed = Some (Ok ()));
  (* The resume handler re-binds a fresh port in the new channel
     table. *)
  match Domain.suspend_port d with
  | Some port ->
    check_true "re-bound after resume"
      (Xenvmm.Event_channel.status (Vmm.channels vmm) port
      = Xenvmm.Event_channel.Bound)
  | None -> Alcotest.fail "expected a fresh suspend port"

let suite =
  ( "guest",
    [
      Alcotest.test_case "suspend event via channel" `Quick
        test_suspend_event_delivered_via_channel;
      Alcotest.test_case "boot runs domain" `Quick test_boot_runs_domain;
      Alcotest.test_case "parallel boot contention" `Quick
        test_parallel_boot_contention;
      Alcotest.test_case "boot starts services" `Quick test_boot_starts_services;
      Alcotest.test_case "shutdown stops services" `Quick
        test_shutdown_stops_services;
      Alcotest.test_case "boot clears page cache" `Quick
        test_boot_clears_page_cache;
      Alcotest.test_case "suspend freezes services" `Quick
        test_suspend_freezes_services_resume_unfreezes;
      Alcotest.test_case "suspend preserves cache" `Quick
        test_suspend_resume_preserves_cache;
      Alcotest.test_case "service lifecycle" `Quick test_service_lifecycle;
      Alcotest.test_case "service start idempotent" `Quick
        test_service_start_idempotent;
      Alcotest.test_case "service downtime accounting" `Quick
        test_service_downtime_accounting;
      Alcotest.test_case "jboss heavier than sshd" `Quick
        test_jboss_heavier_than_sshd;
      Alcotest.test_case "httpd serves through cache" `Quick
        test_httpd_serves_through_cache;
      Alcotest.test_case "httpd refuses when down" `Quick
        test_httpd_refuses_when_down;
    ] )
