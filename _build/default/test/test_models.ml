(* Strategy properties, the Section 3.2 downtime model, Section 5.3
   availability, the Figure 2 policy schedules and the Section 6
   cluster model. *)
open Helpers
module Strategy = Rejuv.Strategy
module Dm = Rejuv.Downtime_model
module Availability = Rejuv.Availability
module Policy = Rejuv.Policy
module Cluster = Rejuv.Cluster

(* --- strategy ------------------------------------------------------------ *)

let test_strategy_properties () =
  check_true "warm preserves" (Strategy.preserves_memory_images Strategy.Warm);
  check_true "saved preserves" (Strategy.preserves_memory_images Strategy.Saved);
  check_false "cold loses" (Strategy.preserves_memory_images Strategy.Cold);
  check_false "warm no reset" (Strategy.requires_hardware_reset Strategy.Warm);
  check_true "cold resets" (Strategy.requires_hardware_reset Strategy.Cold);
  check_true "only cold restarts services"
    (List.for_all
       (fun s -> Strategy.restarts_services s = (s = Strategy.Cold))
       Strategy.all)

let test_strategy_of_string () =
  check_true "warm" (Strategy.of_string "warm" = Some Strategy.Warm);
  check_true "SAVED" (Strategy.of_string "SAVED" = Some Strategy.Saved);
  check_true "full name" (Strategy.of_string "cold-vm reboot" = Some Strategy.Cold);
  check_true "junk" (Strategy.of_string "tepid" = None)

(* --- downtime model ------------------------------------------------------ *)

let test_paper_fit_values () =
  let f = Dm.paper_fits in
  (* d_w(11) = reboot_vmm(11) + resume(11) = 36.95 + 4.66. *)
  check_float ~eps:0.01 "d_warm(11)" 41.61 (Dm.d_warm f ~n:11);
  (* d_c(11) = 47 + 43 + (3.8*11+13) - 16.8*0.5. *)
  check_float ~eps:0.01 "d_cold(11)" 136.4 (Dm.d_cold f ~n:11 ~alpha:0.5)

let test_reduction_formula_matches_paper () =
  (* Section 5.6: r(n) = 3.9n + 60 - 17 alpha. *)
  let r = Dm.reduction_as_formula Dm.paper_fits in
  check_float ~eps:0.05 "n slope" 3.92 r.Dm.n_slope;
  check_float ~eps:0.1 "constant" 60.07 r.Dm.constant;
  check_float ~eps:0.05 "alpha coefficient" (-16.8) r.Dm.alpha_coefficient

let test_reduction_always_positive () =
  (* The paper's closing claim for its configuration. *)
  check_true "r(n) > 0" (Dm.always_positive Dm.paper_fits ~max_n:100)

let test_alpha_validation () =
  check_true "alpha 0 rejected"
    (try ignore (Dm.d_cold Dm.paper_fits ~n:1 ~alpha:0.0); false
     with Invalid_argument _ -> true)

let test_fit_roundtrip () =
  let pts line = List.init 5 (fun i ->
      let x = float_of_int i in
      (x, Simkit.Stat.eval_linear line x))
  in
  let f = Dm.paper_fits in
  let refit =
    Dm.fit ~reboot_vmm:(pts f.Dm.reboot_vmm) ~resume:(pts f.Dm.resume)
      ~reboot_os:(pts f.Dm.reboot_os) ~boot:(pts f.Dm.boot)
      ~reset_hw:f.Dm.reset_hw
  in
  check_float ~eps:1e-6 "slope recovered" f.Dm.reboot_vmm.Simkit.Stat.slope
    refit.Dm.reboot_vmm.Simkit.Stat.slope

let prop_reduction_identity =
  qtest "r(n) = d_cold - d_warm for all n, alpha"
    QCheck.(pair (int_range 0 50) (float_range 0.01 1.0))
    (fun (n, alpha) ->
      let f = Dm.paper_fits in
      Float.abs
        (Dm.reduction f ~n ~alpha
        -. (Dm.d_cold f ~n ~alpha -. Dm.d_warm f ~n))
      < 1e-9)

let prop_reduction_formula_consistent =
  qtest "closed form equals direct computation"
    QCheck.(pair (int_range 0 50) (float_range 0.01 1.0))
    (fun (n, alpha) ->
      let f = Dm.paper_fits in
      let c = Dm.reduction_as_formula f in
      let closed =
        (c.Dm.n_slope *. float_of_int n)
        +. c.Dm.constant
        +. (c.Dm.alpha_coefficient *. alpha)
      in
      Float.abs (closed -. Dm.reduction f ~n ~alpha) < 1e-9)

(* --- availability -------------------------------------------------------- *)

let test_paper_availability_numbers () =
  (* Section 5.3: warm 99.993 %, cold 99.985 %, saved 99.977 %. *)
  let avail strategy vmm_downtime_s =
    Availability.availability
      (Availability.paper_example strategy ~vmm_downtime_s)
  in
  check_float ~eps:5e-6 "warm" 0.99993 (avail Strategy.Warm 42.0);
  check_float ~eps:5e-6 "cold" 0.99985 (avail Strategy.Cold 241.0);
  check_float ~eps:5e-6 "saved" 0.99977 (avail Strategy.Saved 429.0)

let test_nines () =
  check_int "four nines" 4 (Availability.nines 0.99993);
  check_int "three nines" 3 (Availability.nines 0.99985);
  check_int "three nines saved" 3 (Availability.nines 0.99977);
  check_int "two nines" 2 (Availability.nines 0.995);
  check_int "zero" 0 (Availability.nines 0.0)

let test_alpha_only_matters_for_cold () =
  let with_alpha strategy alpha =
    let p = Availability.paper_example strategy ~vmm_downtime_s:100.0 in
    Availability.availability { p with Availability.alpha }
  in
  check_true "warm insensitive"
    (with_alpha Strategy.Warm 0.1 = with_alpha Strategy.Warm 0.9);
  check_true "cold sensitive"
    (with_alpha Strategy.Cold 0.1 <> with_alpha Strategy.Cold 0.9)

let prop_availability_bounds =
  qtest "availability stays in (0, 1]"
    QCheck.(pair (float_range 1.0 10000.0) (float_range 0.01 1.0))
    (fun (vmm_downtime_s, alpha) ->
      let p = Availability.paper_example Strategy.Cold ~vmm_downtime_s in
      let a = Availability.availability { p with Availability.alpha } in
      a > 0.0 && a <= 1.0)

(* --- policy -------------------------------------------------------------- *)

let week = Simkit.Units.weeks 1.0

let test_independent_schedule () =
  (* Figure 2a: with the warm strategy, OS clocks tick on regardless of
     VMM rejuvenations. *)
  let events =
    Policy.schedule ~strategy:Strategy.Warm ~vm_count:1 ~os_interval_s:week
      ~vmm_interval_s:(4.0 *. week)
      ~horizon_s:(8.0 *. week +. 1.0)
  in
  check_int "8 OS rejuvenations" 8 (Policy.os_rejuvenation_count events);
  check_int "2 VMM rejuvenations" 2 (Policy.vmm_rejuvenation_count events)

let test_entangled_schedule () =
  (* Figure 2b: a cold VMM rejuvenation reboots the OS and restarts its
     clock, so fewer scheduled OS rejuvenations happen. *)
  let events =
    Policy.schedule ~strategy:Strategy.Cold ~vm_count:1 ~os_interval_s:week
      ~vmm_interval_s:(3.5 *. week)
      ~horizon_s:(7.0 *. week +. 1.0)
  in
  (* VMM rejuvenations at 3.5 w and 7 w. The first kills the OS
     rejuvenation that would have run at 4 w; the clock restarts at
     3.5 -> 4.5, 5.5, 6.5. *)
  check_int "VMM events" 2 (Policy.vmm_rejuvenation_count events);
  check_int "OS events" 6 (Policy.os_rejuvenation_count events);
  let times =
    List.filter_map
      (function Policy.Os_rejuvenation { at; _ } -> Some (at /. week) | _ -> None)
      events
  in
  Alcotest.(check (list (float 1e-6)))
    "clock restarted" [ 1.0; 2.0; 3.0; 4.5; 5.5; 6.5 ] times

let test_schedule_ordering_and_downtime () =
  let events =
    Policy.schedule ~strategy:Strategy.Cold ~vm_count:3 ~os_interval_s:week
      ~vmm_interval_s:(4.0 *. week)
      ~horizon_s:(4.0 *. week +. 1.0)
  in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      Policy.event_time a <= Policy.event_time b && sorted rest
    | _ -> true
  in
  check_true "time ordered" (sorted events);
  let total =
    Policy.total_downtime ~events ~os_downtime_s:33.6 ~vmm_downtime_s:241.0
      ~overlapping_os_absorbed:true
  in
  (* 3 VMs x 3 OS rejuvenations (the 4th absorbed) + 1 VMM. *)
  check_float ~eps:0.5 "downtime" ((9.0 *. 33.6) +. 241.0) total

let test_policy_trigger () =
  let engine = Simkit.Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Xenvmm.Vmm.create host in
  run_task engine (Xenvmm.Vmm.power_on vmm);
  let aging = Xenvmm.Aging.attach ~config:Xenvmm.Aging.no_aging vmm in
  check_true "flat trend -> no action"
    (Policy.Trigger.evaluate aging ~now:(Simkit.Engine.now engine)
       ~lead_time_s:3600.0
    = Policy.Trigger.No_action);
  (* Inject a visible linear leak. *)
  for _ = 1 to 5 do
    Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 100.0) engine;
    Xenvmm.Vmm_heap.leak (Xenvmm.Vmm.heap vmm) ~bytes:(1024 * 1024);
    Xenvmm.Aging.sample aging
  done;
  match
    Policy.Trigger.evaluate aging ~now:(Simkit.Engine.now engine)
      ~lead_time_s:100.0
  with
  | Policy.Trigger.Rejuvenate_within dt -> check_true "positive lead" (dt > 0.0)
  | Policy.Trigger.Rejuvenate_now -> ()
  | Policy.Trigger.No_action -> Alcotest.fail "expected a trend"

(* --- cluster ------------------------------------------------------------- *)

let test_warm_timeline () =
  let p = Cluster.paper_params ~m:4 ~p:100.0 () in
  let tl = Cluster.warm_timeline p ~reboot_at:600.0 in
  check_float "before" 400.0 (Cluster.throughput_at tl 0.0);
  check_float "during" 300.0 (Cluster.throughput_at tl 620.0);
  check_float "after" 400.0 (Cluster.throughput_at tl 700.0)

let test_cold_timeline_has_degraded_tail () =
  let p = Cluster.paper_params ~m:4 ~p:100.0 () in
  let tl = Cluster.cold_timeline p ~reboot_at:600.0 in
  check_float "outage" 300.0 (Cluster.throughput_at tl 700.0);
  (* After the 241 s outage: (m - 0.69) p while caches refill. *)
  check_float "cache refill dip" 331.0 (Cluster.throughput_at tl 850.0);
  check_float "recovered" 400.0 (Cluster.throughput_at tl 1000.0)

let test_migration_baseline_capped () =
  let p = Cluster.paper_params ~m:4 ~p:100.0 () in
  let tl = Cluster.migration_timeline p ~migrate_at:600.0 in
  (* One host is reserved even in steady state. *)
  check_float "reserved spare" 300.0 (Cluster.throughput_at tl 0.0);
  check_float "during migration" 288.0 (Cluster.throughput_at tl 700.0);
  check_float "after" 300.0 (Cluster.throughput_at tl 2000.0)

let test_lost_capacity_ranking () =
  (* Over a rejuvenation cycle the warm reboot loses the least capacity;
     migration's permanently reserved host costs the most at this scale. *)
  let p = Cluster.paper_params ~m:4 ~p:1.0 () in
  let horizon_s = 3600.0 in
  let lost tl = Cluster.lost_capacity p tl ~horizon_s in
  let warm = lost (Cluster.warm_timeline p ~reboot_at:600.0) in
  let cold = lost (Cluster.cold_timeline p ~reboot_at:600.0) in
  let migration = lost (Cluster.migration_timeline p ~migrate_at:600.0) in
  check_true "warm < cold" (warm < cold);
  check_true "cold < migration (m small)" (cold < migration);
  check_close ~tolerance:0.01 "warm loses its outage" 42.0 warm

let test_rolling_rejuvenation_no_overlap () =
  let p = Cluster.paper_params ~m:3 ~p:1.0 () in
  let tl =
    Cluster.rolling_rejuvenation p ~strategy:Strategy.Warm ~start_at:100.0
      ~gap_s:300.0
  in
  check_float "steady" 3.0 (Cluster.throughput_at tl 0.0);
  check_float "first host down" 2.0 (Cluster.throughput_at tl 110.0);
  check_float "between reboots" 3.0 (Cluster.throughput_at tl 200.0);
  check_float "second host down" 2.0 (Cluster.throughput_at tl 410.0);
  check_float "all done" 3.0 (Cluster.throughput_at tl 1200.0)

let test_rolling_rejuvenation_overlap () =
  (* Gap shorter than the outage: dips must compose additively. *)
  let p = Cluster.paper_params ~m:3 ~p:1.0 () in
  let tl =
    Cluster.rolling_rejuvenation p ~strategy:Strategy.Warm ~start_at:0.0
      ~gap_s:20.0
  in
  (* At t=25: hosts 0 (0..42) and 1 (20..62) both down. *)
  check_float "two down at once" 1.0 (Cluster.throughput_at tl 25.0);
  check_float "recovered" 3.0 (Cluster.throughput_at tl 200.0)

let test_cluster_validation () =
  let p = Cluster.paper_params ~m:1 () in
  check_true "migration needs m >= 2"
    (try ignore (Cluster.migration_timeline p ~migrate_at:0.0); false
     with Invalid_argument _ -> true)

let suite =
  ( "models",
    [
      Alcotest.test_case "strategy properties" `Quick test_strategy_properties;
      Alcotest.test_case "strategy of_string" `Quick test_strategy_of_string;
      Alcotest.test_case "paper fit values" `Quick test_paper_fit_values;
      Alcotest.test_case "reduction formula (5.6)" `Quick
        test_reduction_formula_matches_paper;
      Alcotest.test_case "reduction always positive" `Quick
        test_reduction_always_positive;
      Alcotest.test_case "alpha validation" `Quick test_alpha_validation;
      Alcotest.test_case "fit roundtrip" `Quick test_fit_roundtrip;
      prop_reduction_identity;
      prop_reduction_formula_consistent;
      Alcotest.test_case "paper availability (5.3)" `Quick
        test_paper_availability_numbers;
      Alcotest.test_case "nines" `Quick test_nines;
      Alcotest.test_case "alpha only for cold" `Quick
        test_alpha_only_matters_for_cold;
      prop_availability_bounds;
      Alcotest.test_case "independent schedule (fig 2a)" `Quick
        test_independent_schedule;
      Alcotest.test_case "entangled schedule (fig 2b)" `Quick
        test_entangled_schedule;
      Alcotest.test_case "schedule ordering + downtime" `Quick
        test_schedule_ordering_and_downtime;
      Alcotest.test_case "aging trigger" `Quick test_policy_trigger;
      Alcotest.test_case "warm timeline (fig 9)" `Quick test_warm_timeline;
      Alcotest.test_case "cold timeline (fig 9)" `Quick
        test_cold_timeline_has_degraded_tail;
      Alcotest.test_case "migration baseline" `Quick
        test_migration_baseline_capped;
      Alcotest.test_case "lost capacity ranking" `Quick
        test_lost_capacity_ranking;
      Alcotest.test_case "rolling rejuvenation" `Quick
        test_rolling_rejuvenation_no_overlap;
      Alcotest.test_case "rolling overlap" `Quick
        test_rolling_rejuvenation_overlap;
      Alcotest.test_case "cluster validation" `Quick test_cluster_validation;
    ] )
