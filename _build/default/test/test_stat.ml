open Helpers
module Stat = Simkit.Stat

let test_mean () =
  check_float "mean" 2.0 (Stat.mean [ 1.0; 2.0; 3.0 ]);
  check_float "singleton" 5.0 (Stat.mean [ 5.0 ])

let test_mean_empty () =
  Alcotest.check_raises "empty"
    (Invalid_argument "Stat.mean: empty sample") (fun () ->
      ignore (Stat.mean []))

let test_stddev () =
  (* Sample stddev of 2,4,4,4,5,5,7,9 is sqrt(32/7). *)
  let xs = [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ] in
  check_float ~eps:1e-9 "stddev" (sqrt (32.0 /. 7.0)) (Stat.stddev xs);
  check_float "constant sample" 0.0 (Stat.stddev [ 3.0; 3.0; 3.0 ])

let test_summary () =
  let s = Stat.summarize [ 1.0; 5.0; 3.0 ] in
  check_int "count" 3 s.Stat.count;
  check_float "mean" 3.0 s.Stat.mean;
  check_float "min" 1.0 s.Stat.min;
  check_float "max" 5.0 s.Stat.max

let test_percentile () =
  let xs = [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  check_float "p0" 1.0 (Stat.percentile xs ~p:0.0);
  check_float "p50" 3.0 (Stat.percentile xs ~p:50.0);
  check_float "p100" 5.0 (Stat.percentile xs ~p:100.0);
  check_float "p25 interpolates" 2.0 (Stat.percentile xs ~p:25.0);
  check_float "p90 interpolates" 4.6 (Stat.percentile xs ~p:90.0)

let test_percentile_invalid () =
  Alcotest.check_raises "out of range"
    (Invalid_argument "Stat.percentile: p outside [0, 100]") (fun () ->
      ignore (Stat.percentile [ 1.0 ] ~p:101.0))

let test_linear_fit_exact () =
  let points = List.init 10 (fun i ->
      let x = float_of_int i in
      (x, (2.5 *. x) -. 7.0))
  in
  let fit = Stat.linear_fit points in
  check_float ~eps:1e-9 "slope" 2.5 fit.Stat.slope;
  check_float ~eps:1e-9 "intercept" (-7.0) fit.Stat.intercept;
  check_float ~eps:1e-9 "r2" 1.0 fit.Stat.r2

let test_linear_fit_noisy () =
  (* Symmetric noise around y = x keeps the fit on the line. *)
  let points = [ (0.0, 0.1); (0.0, -0.1); (10.0, 10.1); (10.0, 9.9) ] in
  let fit = Stat.linear_fit points in
  check_float ~eps:1e-9 "slope" 1.0 fit.Stat.slope;
  check_float ~eps:1e-9 "intercept" 0.0 fit.Stat.intercept;
  check_true "r2 < 1 with noise" (fit.Stat.r2 < 1.0)

let test_linear_fit_errors () =
  Alcotest.check_raises "one point"
    (Invalid_argument "Stat.linear_fit: need at least two points") (fun () ->
      ignore (Stat.linear_fit [ (1.0, 1.0) ]));
  Alcotest.check_raises "vertical"
    (Invalid_argument "Stat.linear_fit: all x values identical") (fun () ->
      ignore (Stat.linear_fit [ (1.0, 1.0); (1.0, 2.0) ]))

let test_eval_linear () =
  let line = { Stat.slope = 3.0; intercept = 1.0; r2 = 1.0 } in
  check_float "eval" 10.0 (Stat.eval_linear line 3.0)

let test_online_matches_batch () =
  let xs = [ 3.0; 1.0; 4.0; 1.0; 5.0; 9.0; 2.0; 6.0 ] in
  let o = Stat.Online.create () in
  List.iter (Stat.Online.add o) xs;
  check_int "count" (List.length xs) (Stat.Online.count o);
  check_float ~eps:1e-9 "mean" (Stat.mean xs) (Stat.Online.mean o);
  check_float ~eps:1e-9 "stddev" (Stat.stddev xs) (Stat.Online.stddev o)

let test_online_small () =
  let o = Stat.Online.create () in
  check_float "variance of empty" 0.0 (Stat.Online.variance o);
  Stat.Online.add o 42.0;
  check_float "variance of one" 0.0 (Stat.Online.variance o);
  check_float "mean of one" 42.0 (Stat.Online.mean o)

let prop_online_mean =
  qtest "online mean equals batch mean"
    QCheck.(list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.0))
    (fun xs ->
      let o = Stat.Online.create () in
      List.iter (Stat.Online.add o) xs;
      Float.abs (Stat.Online.mean o -. Stat.mean xs) < 1e-6)

let prop_percentile_bounds =
  qtest "percentile within min..max"
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 50) (float_bound_inclusive 100.0))
        (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let v = Stat.percentile xs ~p in
      let s = Stat.summarize xs in
      v >= s.Stat.min -. 1e-9 && v <= s.Stat.max +. 1e-9)

let prop_fit_recovers_line =
  qtest "fit recovers exact lines"
    QCheck.(pair (float_bound_inclusive 10.0) (float_bound_inclusive 10.0))
    (fun (slope, intercept) ->
      let points =
        List.init 5 (fun i ->
            let x = float_of_int i in
            (x, (slope *. x) +. intercept))
      in
      let fit = Stat.linear_fit points in
      Float.abs (fit.Stat.slope -. slope) < 1e-6
      && Float.abs (fit.Stat.intercept -. intercept) < 1e-6)

let suite =
  ( "stat",
    [
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "mean empty" `Quick test_mean_empty;
      Alcotest.test_case "stddev" `Quick test_stddev;
      Alcotest.test_case "summary" `Quick test_summary;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "percentile invalid" `Quick test_percentile_invalid;
      Alcotest.test_case "linear fit exact" `Quick test_linear_fit_exact;
      Alcotest.test_case "linear fit noisy" `Quick test_linear_fit_noisy;
      Alcotest.test_case "linear fit errors" `Quick test_linear_fit_errors;
      Alcotest.test_case "eval linear" `Quick test_eval_linear;
      Alcotest.test_case "online matches batch" `Quick test_online_matches_batch;
      Alcotest.test_case "online small samples" `Quick test_online_small;
      prop_online_mean;
      prop_percentile_bounds;
      prop_fit_recovers_line;
    ] )
