open Helpers
module Engine = Simkit.Engine
module Trace = Simkit.Trace

let test_span_records_interval () =
  let e = Engine.create () in
  let tr = Trace.create e in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         let s = Trace.begin_span tr "work" in
         ignore (Engine.schedule e ~delay:3.0 (fun () -> Trace.end_span tr s))));
  Engine.run e;
  match Trace.spans tr with
  | [ ("work", start, stop) ] ->
    check_float "start" 1.0 start;
    check_float "stop" 4.0 stop
  | _ -> Alcotest.fail "expected one span"

let test_open_span_not_listed () =
  let e = Engine.create () in
  let tr = Trace.create e in
  ignore (Trace.begin_span tr "open");
  check_int "no completed spans" 0 (List.length (Trace.spans tr))

let test_end_span_idempotent () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let s = Trace.begin_span tr "x" in
  Trace.end_span tr s;
  ignore (Engine.schedule e ~delay:5.0 (fun () -> Trace.end_span tr s));
  Engine.run e;
  match Trace.spans tr with
  | [ ("x", _, stop) ] -> check_float "first end wins" 0.0 stop
  | _ -> Alcotest.fail "expected one span"

let test_duration_sums_same_label () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let mk delay len =
    ignore
      (Engine.schedule e ~delay (fun () ->
           let s = Trace.begin_span tr "phase" in
           ignore (Engine.schedule e ~delay:len (fun () -> Trace.end_span tr s))))
  in
  mk 0.0 1.0;
  mk 5.0 2.0;
  Engine.run e;
  (match Trace.duration tr "phase" with
  | Some d -> check_float "summed" 3.0 d
  | None -> Alcotest.fail "expected duration");
  check_true "missing label" (Trace.duration tr "nope" = None)

let test_instants () =
  let e = Engine.create () in
  let tr = Trace.create e in
  ignore (Engine.schedule e ~delay:2.0 (fun () -> Trace.instant tr "mark"));
  Engine.run e;
  check_true "instant recorded" (Trace.instants tr = [ ("mark", 2.0) ])

let test_find_span () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let s = Trace.begin_span tr "a" in
  Trace.end_span tr s;
  check_true "found" (Trace.find_span tr "a" = Some (0.0, 0.0));
  check_true "not found" (Trace.find_span tr "b" = None)

let test_clear () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let s = Trace.begin_span tr "a" in
  Trace.end_span tr s;
  Trace.instant tr "m";
  Trace.clear tr;
  check_int "spans gone" 0 (List.length (Trace.spans tr));
  check_int "instants gone" 0 (List.length (Trace.instants tr))

let test_spans_in_start_order () =
  let e = Engine.create () in
  let tr = Trace.create e in
  let s1 = Trace.begin_span tr "first" in
  ignore
    (Engine.schedule e ~delay:1.0 (fun () ->
         let s2 = Trace.begin_span tr "second" in
         Trace.end_span tr s2;
         Trace.end_span tr s1));
  Engine.run e;
  Alcotest.(check (list string))
    "order" [ "first"; "second" ]
    (List.map (fun (l, _, _) -> l) (Trace.spans tr))

let suite =
  ( "trace",
    [
      Alcotest.test_case "span interval" `Quick test_span_records_interval;
      Alcotest.test_case "open span hidden" `Quick test_open_span_not_listed;
      Alcotest.test_case "end idempotent" `Quick test_end_span_idempotent;
      Alcotest.test_case "duration sums" `Quick test_duration_sums_same_label;
      Alcotest.test_case "instants" `Quick test_instants;
      Alcotest.test_case "find span" `Quick test_find_span;
      Alcotest.test_case "clear" `Quick test_clear;
      Alcotest.test_case "start order" `Quick test_spans_in_start_order;
    ] )
