open Helpers
module Scheduler = Xenvmm.Scheduler
module Engine = Simkit.Engine

let make ?physical_cpus () =
  let e = Engine.create () in
  (e, Scheduler.create e ?physical_cpus ())

let run_job e s ~domid ~work =
  let t = ref nan in
  Scheduler.run_work s ~domid ~work (fun () -> t := Engine.now e);
  t

let test_single_domain_uses_all_cpus () =
  let e, s = make ~physical_cpus:4 () in
  let t = run_job e s ~domid:1 ~work:8.0 in
  Engine.run e;
  (* 8 CPU-seconds on 4 CPUs. *)
  check_float ~eps:1e-6 "full machine" 2.0 !t

let test_equal_weights_share_equally () =
  let e, s = make ~physical_cpus:1 () in
  let t1 = run_job e s ~domid:1 ~work:3.0 in
  let t2 = run_job e s ~domid:2 ~work:3.0 in
  Engine.run e;
  check_float ~eps:1e-6 "dom1" 6.0 !t1;
  check_float ~eps:1e-6 "dom2" 6.0 !t2

let test_weights_bias_shares () =
  (* Weight 512 vs 256: the heavy domain gets 2/3 of the CPU. *)
  let e, s = make ~physical_cpus:1 () in
  Scheduler.set_params s ~domid:1
    { Scheduler.weight = 512; cap_percent = None };
  Scheduler.set_params s ~domid:2
    { Scheduler.weight = 256; cap_percent = None };
  let t1 = run_job e s ~domid:1 ~work:2.0 in
  let t2 = run_job e s ~domid:2 ~work:2.0 in
  Engine.run e;
  (* dom1 at rate 2/3 finishes at 3.0 (2 / (2/3)); dom2 then has
     2 - 3*(1/3) = 1 left, alone at rate 1 -> t=4. *)
  check_float ~eps:1e-6 "heavy first" 3.0 !t1;
  check_float ~eps:1e-6 "light later" 4.0 !t2

let test_cap_limits_idle_host () =
  (* A 25 % cap holds even with the machine otherwise idle. *)
  let e, s = make ~physical_cpus:4 () in
  Scheduler.set_params s ~domid:1
    { Scheduler.weight = 256; cap_percent = Some 25 };
  let t = run_job e s ~domid:1 ~work:1.0 in
  Engine.run e;
  check_float ~eps:1e-6 "capped rate" 4.0 !t

let test_cap_surplus_reflows () =
  (* One capped and one uncapped domain on one CPU: the uncapped one
     absorbs the capacity the cap leaves on the table. *)
  let e, s = make ~physical_cpus:1 () in
  Scheduler.set_params s ~domid:1
    { Scheduler.weight = 256; cap_percent = Some 20 };
  Scheduler.set_params s ~domid:2
    { Scheduler.weight = 256; cap_percent = None };
  let t1 = run_job e s ~domid:1 ~work:1.0 in
  let t2 = run_job e s ~domid:2 ~work:1.6 in
  Engine.run e;
  (* dom1 pinned at 0.2; dom2 gets 0.8: finishes 1.6/0.8 = 2.0; then
     dom1 still at its cap: 1 - 2*0.2 = 0.6 left at 0.2 -> 3 more s. *)
  check_float ~eps:1e-6 "uncapped finishes first" 2.0 !t2;
  check_float ~eps:1e-6 "capped grinds on" 5.0 !t1

let test_jobs_within_domain_share_its_rate () =
  let e, s = make ~physical_cpus:1 () in
  let ta = run_job e s ~domid:1 ~work:1.0 in
  let tb = run_job e s ~domid:1 ~work:1.0 in
  let tc = run_job e s ~domid:2 ~work:1.0 in
  Engine.run e;
  (* Domain shares are 1/2 each; dom1's two jobs get 1/4 each. The
     domain split is per-domain fair, not per-job fair. *)
  check_float ~eps:1e-6 "dom2 job" 2.0 !tc;
  check_float ~eps:1e-6 "dom1 job a" 3.0 !ta;
  check_float ~eps:1e-6 "dom1 job b" 3.0 !tb

let test_params_roundtrip_and_validation () =
  let _e, s = make () in
  check_int "default weight" 256 (Scheduler.params_of s ~domid:7).Scheduler.weight;
  Scheduler.set_params s ~domid:7 { Scheduler.weight = 128; cap_percent = Some 50 };
  check_int "updated" 128 (Scheduler.params_of s ~domid:7).Scheduler.weight;
  Scheduler.remove_domain s ~domid:7;
  check_int "back to default" 256
    (Scheduler.params_of s ~domid:7).Scheduler.weight;
  check_true "bad weight"
    (try Scheduler.set_params s ~domid:1 { Scheduler.weight = 0; cap_percent = None };
       false
     with Invalid_argument _ -> true)

let test_zero_work () =
  let e, s = make () in
  let fired = ref false in
  Scheduler.run_work s ~domid:1 ~work:0.0 (fun () -> fired := true);
  Engine.run e;
  check_true "completed" !fired

let test_utilization_full_when_busy () =
  let e, s = make ~physical_cpus:2 () in
  ignore (run_job e s ~domid:1 ~work:4.0);
  ignore (run_job e s ~domid:2 ~work:4.0);
  Engine.run e;
  check_close ~tolerance:0.01 "fully utilized" 1.0 (Scheduler.utilization s)

let test_utilization_capped () =
  let e, s = make ~physical_cpus:2 () in
  Scheduler.set_params s ~domid:1
    { Scheduler.weight = 256; cap_percent = Some 50 };
  ignore (run_job e s ~domid:1 ~work:1.0);
  Engine.run e;
  (* Only 0.5 of 2 CPUs used while busy. *)
  check_close ~tolerance:0.01 "quarter utilized" 0.25 (Scheduler.utilization s)

let prop_conservation =
  qtest ~count:100 "total work delivered equals total work submitted"
    QCheck.(
      list_of_size (Gen.int_range 1 8)
        (pair (int_range 1 4) (float_range 0.1 5.0)))
    (fun jobs ->
      let e, s = make ~physical_cpus:2 () in
      let completed = ref 0 in
      List.iter
        (fun (domid, work) ->
          Scheduler.run_work s ~domid ~work (fun () -> incr completed))
        jobs;
      Engine.run e;
      !completed = List.length jobs)

(* --- integration: weighted guest boots ----------------------------------- *)

let test_weighted_boot_prioritizes_recovery () =
  (* Two identical VMs boot in parallel; the one with 4x weight is up
     well before the other — prioritized recovery after a cold
     reboot. *)
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Xenvmm.Vmm.create host in
  run_task engine (Xenvmm.Vmm.power_on vmm);
  let make name =
    let r = ref None in
    Xenvmm.Vmm.create_domain vmm ~name ~mem_bytes:(Simkit.Units.gib 1)
      (fun x -> r := Some x);
    Engine.run engine;
    match !r with
    | Some (Ok d) -> (d, Guest.Kernel.create vmm d ())
    | _ -> Alcotest.fail "create failed"
  in
  let d1, k1 = make "critical" in
  let _d2, k2 = make "batch" in
  Scheduler.set_params (Xenvmm.Vmm.scheduler vmm) ~domid:(Xenvmm.Domain.id d1)
    { Scheduler.weight = 1024; cap_percent = None };
  let t1 = ref nan and t2 = ref nan in
  let t0 = Engine.now engine in
  Guest.Kernel.boot k1 (fun () -> t1 := Engine.now engine -. t0);
  Guest.Kernel.boot k2 (fun () -> t2 := Engine.now engine -. t0);
  Engine.run engine;
  check_true "critical VM up first" (!t1 < !t2);
  (* Weight 1024 vs 256: critical gets 4/5 of the capacity. Its shared
     phase takes 3.4/(4/5) = 4.25 s (vs 6.8 s unweighted). *)
  check_in_band "critical boot time" ~lo:6.5 ~hi:7.5 !t1;
  check_true "batch VM still completes" (Float.is_nan !t2 = false)

let test_equal_weights_match_calibration () =
  (* With default weights, the scheduler reproduces the calibrated
     boot(n) = 3.4 n + 2.8 exactly. *)
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Xenvmm.Vmm.create host in
  run_task engine (Xenvmm.Vmm.power_on vmm);
  let kernels =
    List.init 6 (fun i ->
        let r = ref None in
        Xenvmm.Vmm.create_domain vmm
          ~name:(Printf.sprintf "vm%d" i)
          ~mem_bytes:(Simkit.Units.gib 1)
          (fun x -> r := Some x);
        Engine.run engine;
        match !r with
        | Some (Ok d) -> Guest.Kernel.create vmm d ()
        | _ -> Alcotest.fail "create failed")
  in
  let duration =
    task_duration engine
      (Simkit.Process.par (List.map Guest.Kernel.boot kernels))
  in
  check_close ~tolerance:0.02 "boot(6)" ((3.4 *. 6.0) +. 2.8) duration

let suite =
  ( "scheduler",
    [
      Alcotest.test_case "single domain, all CPUs" `Quick
        test_single_domain_uses_all_cpus;
      Alcotest.test_case "equal weights" `Quick test_equal_weights_share_equally;
      Alcotest.test_case "weights bias shares" `Quick test_weights_bias_shares;
      Alcotest.test_case "cap on idle host" `Quick test_cap_limits_idle_host;
      Alcotest.test_case "cap surplus reflows" `Quick test_cap_surplus_reflows;
      Alcotest.test_case "per-domain fairness" `Quick
        test_jobs_within_domain_share_its_rate;
      Alcotest.test_case "params + validation" `Quick
        test_params_roundtrip_and_validation;
      Alcotest.test_case "zero work" `Quick test_zero_work;
      Alcotest.test_case "utilization busy" `Quick test_utilization_full_when_busy;
      Alcotest.test_case "utilization capped" `Quick test_utilization_capped;
      prop_conservation;
      Alcotest.test_case "weighted boot priority" `Quick
        test_weighted_boot_prioritizes_recovery;
      Alcotest.test_case "equal weights = calibration" `Quick
        test_equal_weights_match_calibration;
    ] )
