(* Memory scrub model, disk timing, NIC degradation, BIOS POST. *)
open Helpers
module Engine = Simkit.Engine

let mib = Simkit.Units.mib
let gib = Simkit.Units.gib

(* --- memory -------------------------------------------------------------- *)

let test_memory_scrub_times () =
  let m = Hw.Memory.create ~total_bytes:(gib 12) ~scrub_seconds_per_gib:0.55 in
  check_float ~eps:1e-6 "all" 6.6 (Hw.Memory.scrub_all_time m);
  check_float ~eps:1e-6 "free = all when empty" 6.6 (Hw.Memory.scrub_free_time m);
  ignore (Hw.Frame.alloc_bytes (Hw.Memory.frames m) ~bytes:(gib 4));
  check_close ~tolerance:0.01 "free shrinks when reserved" (0.55 *. 8.0)
    (Hw.Memory.scrub_free_time m);
  check_float ~eps:1e-6 "all unchanged" 6.6 (Hw.Memory.scrub_all_time m)

let test_memory_wipe () =
  let m = Hw.Memory.create ~total_bytes:(gib 1) ~scrub_seconds_per_gib:0.55 in
  ignore (Hw.Frame.alloc_bytes (Hw.Memory.frames m) ~bytes:(mib 512));
  check_true "used" (Hw.Memory.used_bytes m > 0);
  Hw.Memory.wipe m;
  check_int "all free" (gib 1) (Hw.Memory.free_bytes m)

(* --- disk ---------------------------------------------------------------- *)

let make_disk e = Hw.Disk.create e ~read_mib_per_s:88.0 ~write_mib_per_s:85.0 ~seek_ms:4.0 ()

let test_disk_sequential_read () =
  let e = Engine.create () in
  let d = make_disk e in
  let duration = task_duration e (fun k -> Hw.Disk.read d ~bytes:(mib 88) k) in
  check_close ~tolerance:0.01 "1 s + seek" 1.004 duration;
  check_int "accounted" (mib 88) (Hw.Disk.bytes_read d)

let test_disk_write_rate_differs () =
  let e = Engine.create () in
  let d = make_disk e in
  let duration = task_duration e (fun k -> Hw.Disk.write d ~bytes:(mib 85) k) in
  check_close ~tolerance:0.01 "write rate" 1.004 duration

let test_disk_random_penalty () =
  let e = Engine.create () in
  let d = make_disk e in
  let seq = task_duration e (fun k -> Hw.Disk.read d ~bytes:(mib 88) k) in
  let rnd =
    task_duration e (fun k -> Hw.Disk.read d ~bytes:(mib 88) ~random:true k)
  in
  check_close ~tolerance:0.02 "1.5x penalty" 1.5 (rnd /. seq)

let test_disk_interleave_penalty () =
  (* Two concurrent sequential streams lose sequentiality: the paper's
     11-VM parallel save takes ~200 s where one 11 GiB save takes 133. *)
  let e = Engine.create () in
  let d = make_disk e in
  let t1 = ref nan and t2 = ref nan in
  Hw.Disk.write d ~bytes:(mib 85) (fun () -> t1 := Engine.now e);
  Hw.Disk.write d ~bytes:(mib 85) (fun () -> t2 := Engine.now e);
  Engine.run e;
  (* First submitted sequential (1 s), second interleaved (1.5 s):
     spindle-shared so both finish around 2.5 s. *)
  check_in_band "interleaved total" ~lo:2.4 ~hi:2.7 !t2

let test_disk_seeks_per_op () =
  let e = Engine.create () in
  let d = make_disk e in
  let one = task_duration e (fun k -> Hw.Disk.read d ~bytes:4096 ~ops:1 k) in
  let many = task_duration e (fun k -> Hw.Disk.read d ~bytes:4096 ~ops:100 k) in
  check_close ~tolerance:0.02 "100 seeks" (one +. (99.0 *. 0.004)) many

(* --- nic ----------------------------------------------------------------- *)

let test_nic_transfer_time () =
  let e = Engine.create () in
  let n = Hw.Nic.create e ~gbit_per_s:1.0 () in
  (* 125 MB at 125 MB/s. *)
  let duration =
    task_duration e (fun k -> Hw.Nic.transfer n ~bytes:125_000_000 k)
  in
  check_close ~tolerance:0.01 "1 second" 1.0 duration

let test_nic_degradation () =
  let e = Engine.create () in
  let n = Hw.Nic.create e ~gbit_per_s:1.0 () in
  Hw.Nic.set_degradation n ~factor:0.15;
  check_float "factor" 0.15 (Hw.Nic.degradation n);
  let slow =
    task_duration e (fun k -> Hw.Nic.transfer n ~bytes:125_000_000 k)
  in
  check_close ~tolerance:0.01 "6.7x slower" (1.0 /. 0.15) slow;
  Hw.Nic.clear_degradation n;
  let fast =
    task_duration e (fun k -> Hw.Nic.transfer n ~bytes:125_000_000 k)
  in
  check_close ~tolerance:0.01 "restored" 1.0 fast

let test_nic_degradation_bounds () =
  let e = Engine.create () in
  let n = Hw.Nic.create e ~gbit_per_s:1.0 () in
  check_true "zero rejected"
    (try Hw.Nic.set_degradation n ~factor:0.0; false
     with Invalid_argument _ -> true);
  check_true "over one rejected"
    (try Hw.Nic.set_degradation n ~factor:1.5; false
     with Invalid_argument _ -> true)

(* --- bios / host --------------------------------------------------------- *)

let test_bios_post_time () =
  (* Section 5.6: reset_hw = 47 s on the 12 GiB testbed. *)
  check_float ~eps:1e-6 "47 s at 12 GiB" 47.0
    (Hw.Bios.post_time Hw.Bios.default ~mem_bytes:(gib 12));
  (* The memory check scales with installed RAM. *)
  check_float ~eps:1e-6 "smaller machine" 23.0
    (Hw.Bios.post_time Hw.Bios.default ~mem_bytes:(gib 4))

let test_host_assembly () =
  let e = Engine.create () in
  let h = Hw.Host.create e in
  check_int "12 GiB default" (gib 12)
    (Hw.Memory.total_bytes h.Hw.Host.memory);
  check_float ~eps:1e-6 "post time" 47.0 (Hw.Host.post_time h);
  check_float "cpu capacity" 1.0 (Simkit.Resource.capacity h.Hw.Host.cpu)

let suite =
  ( "hw",
    [
      Alcotest.test_case "memory scrub times" `Quick test_memory_scrub_times;
      Alcotest.test_case "memory wipe" `Quick test_memory_wipe;
      Alcotest.test_case "disk sequential read" `Quick test_disk_sequential_read;
      Alcotest.test_case "disk write rate" `Quick test_disk_write_rate_differs;
      Alcotest.test_case "disk random penalty" `Quick test_disk_random_penalty;
      Alcotest.test_case "disk interleave penalty" `Quick
        test_disk_interleave_penalty;
      Alcotest.test_case "disk seeks per op" `Quick test_disk_seeks_per_op;
      Alcotest.test_case "nic transfer" `Quick test_nic_transfer_time;
      Alcotest.test_case "nic degradation" `Quick test_nic_degradation;
      Alcotest.test_case "nic degradation bounds" `Quick
        test_nic_degradation_bounds;
      Alcotest.test_case "bios post time" `Quick test_bios_post_time;
      Alcotest.test_case "host assembly" `Quick test_host_assembly;
    ] )
