open Helpers
module Gt = Xenvmm.Grant_table
module Vmm = Xenvmm.Vmm
module Domain = Xenvmm.Domain
module Engine = Simkit.Engine

let test_grant_and_map () =
  let t = Gt.create () in
  let r = Gt.grant t ~owner:1 ~grantee:0 ~pfn:5 () in
  check_false "not mapped yet" (Gt.is_mapped t r);
  check_true "map ok" (Gt.map t r ~by:0 = Ok ());
  check_true "mapped" (Gt.is_mapped t r);
  check_int "foreign mapping counted" 1 (Gt.foreign_mappings_of t 1);
  check_int "none for grantee" 0 (Gt.foreign_mappings_of t 0)

let test_only_grantee_can_map () =
  let t = Gt.create () in
  let r = Gt.grant t ~owner:1 ~grantee:0 ~pfn:5 () in
  check_true "stranger refused" (Gt.map t r ~by:7 = Error `Wrong_domain);
  check_true "owner refused" (Gt.map t r ~by:1 = Error `Wrong_domain)

let test_double_map_refused () =
  let t = Gt.create () in
  let r = Gt.grant t ~owner:1 ~grantee:0 ~pfn:5 () in
  check_true "first" (Gt.map t r ~by:0 = Ok ());
  check_true "second refused" (Gt.map t r ~by:0 = Error `Still_mapped);
  check_true "unmap" (Gt.unmap t r ~by:0 = Ok ());
  check_true "remappable" (Gt.map t r ~by:0 = Ok ())

let test_revoke_rules () =
  let t = Gt.create () in
  let r = Gt.grant t ~owner:1 ~grantee:0 ~pfn:5 () in
  check_true "map" (Gt.map t r ~by:0 = Ok ());
  check_true "revoke while mapped refused" (Gt.revoke t r ~by:1 = Error `Still_mapped);
  check_true "non-owner refused" (Gt.revoke t r ~by:0 = Error `Wrong_domain);
  check_true "unmap" (Gt.unmap t r ~by:0 = Ok ());
  check_true "revoke ok" (Gt.revoke t r ~by:1 = Ok ());
  check_true "gone" (Gt.map t r ~by:0 = Error `Bad_ref);
  check_int "empty" 0 (Gt.entries t)

let test_bad_ref () =
  let t = Gt.create () in
  check_true "map" (Gt.map t 42 ~by:0 = Error `Bad_ref);
  check_true "unmap" (Gt.unmap t 42 ~by:0 = Error `Bad_ref);
  check_true "revoke" (Gt.revoke t 42 ~by:0 = Error `Bad_ref)

let test_self_grant_rejected () =
  let t = Gt.create () in
  check_true "raises"
    (try ignore (Gt.grant t ~owner:1 ~grantee:1 ~pfn:0 ()); false
     with Invalid_argument _ -> true)

let test_release_domain () =
  let t = Gt.create () in
  (* Domain 1 grants to dom0; dom0 grants something to domain 1 too. *)
  let r1 = Gt.grant t ~owner:1 ~grantee:0 ~pfn:0 () in
  let r2 = Gt.grant t ~owner:1 ~grantee:0 ~pfn:1 () in
  let r3 = Gt.grant t ~owner:0 ~grantee:1 ~pfn:9 () in
  check_true "m1" (Gt.map t r1 ~by:0 = Ok ());
  check_true "m3" (Gt.map t r3 ~by:1 = Ok ());
  Gt.release_domain t 1;
  check_true "owned grants dropped" (Gt.grants_owned_by t 1 = []);
  check_true "r1 gone" (Gt.map t r1 ~by:0 = Error `Bad_ref);
  check_true "r2 gone" (Gt.map t r2 ~by:0 = Error `Bad_ref);
  check_false "held mapping released" (Gt.is_mapped t r3);
  check_int "dom0's grant survives" 1 (List.length (Gt.grants_owned_by t 0));
  check_true "invariants" (Gt.check_invariants t = Ok ())

let test_listing () =
  let t = Gt.create () in
  let r1 = Gt.grant t ~owner:1 ~grantee:0 ~pfn:0 () in
  let r2 = Gt.grant t ~owner:1 ~grantee:2 ~pfn:1 () in
  check_true "owned" (Gt.grants_owned_by t 1 = [ r1; r2 ]);
  check_true "m2" (Gt.map t r2 ~by:2 = Ok ());
  check_true "held" (Gt.mappings_held_by t 2 = [ r2 ]);
  check_true "dom0 holds none" (Gt.mappings_held_by t 0 = [])

(* --- integration with the guest kernel ------------------------------------ *)

let booted_kernel () =
  let engine = Engine.create () in
  let host = Hw.Host.create engine in
  let vmm = Vmm.create host in
  run_task engine (Vmm.power_on vmm);
  let r = ref None in
  Vmm.create_domain vmm ~name:"vm01" ~mem_bytes:(Simkit.Units.gib 1)
    (fun x -> r := Some x);
  Engine.run engine;
  match !r with
  | Some (Ok d) ->
    let kernel = Guest.Kernel.create vmm d () in
    run_task engine (Guest.Kernel.boot kernel);
    (engine, vmm, d, kernel)
  | _ -> Alcotest.fail "setup failed"

let test_boot_establishes_rings () =
  let _engine, vmm, d, kernel = booted_kernel () in
  check_int "four ring grants" 4
    (List.length (Guest.Kernel.io_ring_grants kernel));
  check_int "dom0 maps them" 4
    (Gt.foreign_mappings_of (Vmm.grants vmm) (Domain.id d))

let test_suspend_tears_rings_down_resume_rebuilds () =
  let engine, vmm, d, kernel = booted_kernel () in
  run_task engine (Vmm.shutdown_dom0 vmm);
  run_task engine (Vmm.suspend_all_on_memory vmm);
  check_true "suspended cleanly" (Domain.state d = Domain.Suspended);
  check_int "rings down" 0 (List.length (Guest.Kernel.io_ring_grants kernel));
  let reloaded = ref None in
  Vmm.quick_reload vmm (fun r -> reloaded := Some r);
  Engine.run engine;
  check_true "reloaded" (!reloaded = Some (Ok ()));
  run_task engine (Vmm.boot_dom0 vmm);
  let resumed = ref None in
  Vmm.resume_domain_on_memory vmm d (fun r -> resumed := Some r);
  Engine.run engine;
  check_true "resumed" (!resumed = Some (Ok ()));
  check_int "rings re-established with the new dom0" 4
    (List.length (Guest.Kernel.io_ring_grants kernel));
  check_int "mapped again" 4
    (Gt.foreign_mappings_of (Vmm.grants vmm) (Domain.id d))

let test_foreign_mapping_blocks_freeze () =
  (* A buggy guest whose suspend handler does not tear its rings down
     cannot be frozen — it crashes instead of corrupting shared pages. *)
  let engine, vmm, d, _kernel = booted_kernel () in
  Domain.set_suspend_handler d (fun k -> k ());
  run_task engine (Vmm.shutdown_dom0 vmm);
  run_task engine (Vmm.suspend_all_on_memory vmm);
  check_true "crashed, not frozen" (Domain.state d = Domain.Crashed)

let prop_foreign_count_matches_mappings =
  qtest ~count:100 "foreign mapping count is consistent"
    QCheck.(list (pair (int_range 1 3) (int_range 0 9)))
    (fun specs ->
      let t = Gt.create () in
      let refs =
        List.map
          (fun (owner, pfn) ->
            let r = Gt.grant t ~owner ~grantee:0 ~pfn () in
            let _ = Gt.map t r ~by:0 in
            (owner, r))
          specs
      in
      let count_for owner =
        List.length (List.filter (fun (o, _) -> o = owner) refs)
      in
      List.for_all
        (fun owner -> Gt.foreign_mappings_of t owner = count_for owner)
        [ 1; 2; 3 ]
      && Gt.check_invariants t = Ok ())

let suite =
  ( "grant_table",
    [
      Alcotest.test_case "grant and map" `Quick test_grant_and_map;
      Alcotest.test_case "only grantee maps" `Quick test_only_grantee_can_map;
      Alcotest.test_case "double map refused" `Quick test_double_map_refused;
      Alcotest.test_case "revoke rules" `Quick test_revoke_rules;
      Alcotest.test_case "bad ref" `Quick test_bad_ref;
      Alcotest.test_case "self grant rejected" `Quick test_self_grant_rejected;
      Alcotest.test_case "release domain" `Quick test_release_domain;
      Alcotest.test_case "listing" `Quick test_listing;
      Alcotest.test_case "boot establishes rings" `Quick
        test_boot_establishes_rings;
      Alcotest.test_case "suspend/resume ring lifecycle" `Quick
        test_suspend_tears_rings_down_resume_rebuilds;
      Alcotest.test_case "foreign mapping blocks freeze" `Quick
        test_foreign_mapping_blocks_freeze;
      prop_foreign_count_matches_mappings;
    ] )
