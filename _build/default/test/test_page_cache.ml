open Helpers
module Cache = Guest.Page_cache

let kib = Simkit.Units.kib

let make ?(blocks = 4) () =
  Cache.create ~capacity_bytes:(blocks * 4096) ()

let test_empty () =
  let c = make () in
  check_int "used" 0 (Cache.used_bytes c);
  check_int "resident" 0 (Cache.resident_blocks c);
  check_false "mem" (Cache.mem c ~file:0 ~block:0);
  check_float "no lookups -> ratio 1" 1.0 (Cache.hit_ratio c)

let test_insert_and_hit () =
  let c = make () in
  Cache.insert c ~file:1 ~block:0;
  check_true "mem" (Cache.mem c ~file:1 ~block:0);
  check_true "touch hits" (Cache.touch c ~file:1 ~block:0);
  check_int "hits" 1 (Cache.hits c);
  check_false "other block misses" (Cache.touch c ~file:1 ~block:1);
  check_int "misses" 1 (Cache.misses c);
  check_float "ratio" 0.5 (Cache.hit_ratio c)

let test_mem_does_not_count () =
  let c = make () in
  Cache.insert c ~file:1 ~block:0;
  ignore (Cache.mem c ~file:1 ~block:0);
  ignore (Cache.mem c ~file:9 ~block:9);
  check_int "no hits" 0 (Cache.hits c);
  check_int "no misses" 0 (Cache.misses c)

let test_lru_eviction () =
  let c = make ~blocks:3 () in
  Cache.insert c ~file:0 ~block:0;
  Cache.insert c ~file:0 ~block:1;
  Cache.insert c ~file:0 ~block:2;
  (* Touch block 0 so block 1 becomes least recently used. *)
  ignore (Cache.touch c ~file:0 ~block:0);
  Cache.insert c ~file:0 ~block:3;
  check_true "0 survives (recently used)" (Cache.mem c ~file:0 ~block:0);
  check_false "1 evicted (LRU)" (Cache.mem c ~file:0 ~block:1);
  check_true "2 survives" (Cache.mem c ~file:0 ~block:2);
  check_true "3 inserted" (Cache.mem c ~file:0 ~block:3);
  check_int "at capacity" 3 (Cache.resident_blocks c)

let test_reinsert_promotes () =
  let c = make ~blocks:2 () in
  Cache.insert c ~file:0 ~block:0;
  Cache.insert c ~file:0 ~block:1;
  Cache.insert c ~file:0 ~block:0;
  (* Block 1 is now LRU. *)
  Cache.insert c ~file:0 ~block:2;
  check_true "0 kept" (Cache.mem c ~file:0 ~block:0);
  check_false "1 evicted" (Cache.mem c ~file:0 ~block:1)

let test_reinsert_no_duplicate () =
  let c = make () in
  Cache.insert c ~file:0 ~block:0;
  Cache.insert c ~file:0 ~block:0;
  check_int "one entry" 1 (Cache.resident_blocks c)

let test_files_distinguished () =
  let c = make () in
  Cache.insert c ~file:1 ~block:0;
  check_false "same block other file" (Cache.mem c ~file:2 ~block:0)

let test_invalidate_file () =
  let c = make ~blocks:8 () in
  for b = 0 to 2 do Cache.insert c ~file:1 ~block:b done;
  for b = 0 to 2 do Cache.insert c ~file:2 ~block:b done;
  Cache.invalidate_file c ~file:1;
  check_int "file 1 gone" 0 (Cache.resident_blocks_of c ~file:1);
  check_int "file 2 intact" 3 (Cache.resident_blocks_of c ~file:2);
  check_true "invariants" (Cache.check_invariants c = Ok ())

let test_clear_resets_counters () =
  let c = make () in
  Cache.insert c ~file:0 ~block:0;
  ignore (Cache.touch c ~file:0 ~block:0);
  ignore (Cache.touch c ~file:0 ~block:9);
  Cache.clear c;
  check_int "empty" 0 (Cache.resident_blocks c);
  check_int "hits reset" 0 (Cache.hits c);
  check_int "misses reset" 0 (Cache.misses c)

let test_zero_capacity () =
  let c = Cache.create ~capacity_bytes:0 () in
  Cache.insert c ~file:0 ~block:0;
  check_int "nothing cached" 0 (Cache.resident_blocks c);
  check_false "always misses" (Cache.touch c ~file:0 ~block:0)

let test_custom_block_size () =
  let c = Cache.create ~capacity_bytes:(kib 64) ~block_bytes:(kib 16) () in
  check_int "block size" (kib 16) (Cache.block_bytes c);
  for b = 0 to 9 do Cache.insert c ~file:0 ~block:b done;
  check_int "capped at 4 blocks" 4 (Cache.resident_blocks c);
  check_int "used bytes" (kib 64) (Cache.used_bytes c)

let prop_never_over_capacity =
  qtest "random workload never exceeds capacity and keeps invariants"
    QCheck.(list (pair (int_range 0 5) (int_range 0 40)))
    (fun ops ->
      let c = Cache.create ~capacity_bytes:(16 * 4096) () in
      List.iteri
        (fun i (file, block) ->
          if i mod 3 = 0 then ignore (Cache.touch c ~file ~block)
          else Cache.insert c ~file ~block)
        ops;
      Cache.resident_blocks c <= 16 && Cache.check_invariants c = Ok ())

let prop_recent_working_set_resident =
  qtest "the k most recent distinct inserts are always resident"
    QCheck.(list_of_size (Gen.int_range 1 100) (int_range 0 50))
    (fun blocks ->
      let capacity = 8 in
      let c = Cache.create ~capacity_bytes:(capacity * 4096) () in
      List.iter (fun b -> Cache.insert c ~file:0 ~block:b) blocks;
      (* The last [capacity] distinct blocks inserted must be present. *)
      let rec last_distinct acc = function
        | [] -> acc
        | b :: rest ->
          if List.length acc >= capacity then acc
          else if List.mem b acc then last_distinct acc rest
          else last_distinct (b :: acc) rest
      in
      let recent = last_distinct [] (List.rev blocks) in
      List.for_all (fun b -> Cache.mem c ~file:0 ~block:b) recent)

let suite =
  ( "page_cache",
    [
      Alcotest.test_case "empty" `Quick test_empty;
      Alcotest.test_case "insert and hit" `Quick test_insert_and_hit;
      Alcotest.test_case "mem does not count" `Quick test_mem_does_not_count;
      Alcotest.test_case "lru eviction" `Quick test_lru_eviction;
      Alcotest.test_case "reinsert promotes" `Quick test_reinsert_promotes;
      Alcotest.test_case "reinsert no duplicate" `Quick
        test_reinsert_no_duplicate;
      Alcotest.test_case "files distinguished" `Quick test_files_distinguished;
      Alcotest.test_case "invalidate file" `Quick test_invalidate_file;
      Alcotest.test_case "clear resets" `Quick test_clear_resets_counters;
      Alcotest.test_case "zero capacity" `Quick test_zero_capacity;
      Alcotest.test_case "custom block size" `Quick test_custom_block_size;
      prop_never_over_capacity;
      prop_recent_working_set_resident;
    ] )
