(** The saved-VM reboot baseline: stock Xen suspend/resume.

    Every domain's whole memory image is written to the (single,
    contended) disk before the reboot and read back afterwards, so both
    phases scale with total guest memory — the behaviour Figures 4 and 5
    show growing into hundreds of seconds. The reboot in the middle is a
    normal hardware reset. Services are not restarted (the images
    preserve them), but they are unreachable from the moment their VM
    starts saving. *)

val execute : Scenario.t -> Simkit.Process.task
