module Vmm = Xenvmm.Vmm

let execute scenario k =
  let vmm = Scenario.vmm scenario in
  let cal = Scenario.calibration scenario in
  let engine = Scenario.engine scenario in
  let tr = Scenario.trace scenario in
  Simkit.Trace.instant tr "reboot command (saved)";
  (* dom0 drives the suspends while it is still up (the original Xen
     design the paper contrasts with): all saves run concurrently and
     contend for the one disk. *)
  Simkit.Process.delay engine cal.Calibration.save_dispatch_delay_s (fun () ->
      let pre = Simkit.Trace.begin_span tr "pre-reboot tasks" in
      Simkit.Process.par
        (List.map
           (fun v k ->
             Vmm.save_domain_to_disk vmm (Scenario.vm_domain v) (function
               | Ok () -> k ()
               | Error e -> failwith (Vmm.error_message e)))
           (Scenario.vms scenario))
        (fun () ->
          Simkit.Trace.end_span tr pre;
          let reboot = Simkit.Trace.begin_span tr "vmm reboot" in
          Vmm.shutdown_dom0 vmm (fun () ->
              Vmm.shutdown_vmm vmm (fun () ->
                  Vmm.hardware_reset vmm (fun () ->
                      Vmm.boot_dom0 vmm (fun () ->
                          Simkit.Trace.end_span tr reboot;
                          let post =
                            Simkit.Trace.begin_span tr "post-reboot tasks"
                          in
                          (* Restores run serially through the toolstack
                             (each a sequential read of its image) — or
                             concurrently under the ablation knob, where
                             the interleaved reads contend for the
                             spindle. *)
                          let restore_one v k =
                            Vmm.restore_domain_from_disk vmm
                              ~name:(Scenario.vm_name v) (function
                              | Ok _ -> k ()
                              | Error e -> failwith (Vmm.error_message e))
                          in
                          let combine =
                            if cal.Calibration.parallel_restore then
                              Simkit.Process.par
                            else Simkit.Process.seq
                          in
                          combine
                            (List.map restore_one (Scenario.vms scenario))
                            (fun () ->
                              Simkit.Trace.end_span tr post;
                              k ())))))))
