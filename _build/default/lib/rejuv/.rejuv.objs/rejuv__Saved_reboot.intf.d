lib/rejuv/saved_reboot.mli: Scenario Simkit
