lib/rejuv/saved_reboot.ml: Calibration List Scenario Simkit Xenvmm
