lib/rejuv/roothammer.ml: Cold_reboot Saved_reboot Scenario Simkit Strategy Warm_reboot
