lib/rejuv/downtime_model.ml: Format Simkit
