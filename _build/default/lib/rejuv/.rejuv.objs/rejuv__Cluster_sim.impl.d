lib/rejuv/cluster_sim.ml: Array Calibration List Netsim Printf Roothammer Scenario Simkit Strategy
