lib/rejuv/roothammer.mli: Scenario Simkit Strategy
