lib/rejuv/cold_reboot.mli: Scenario Simkit
