lib/rejuv/cluster.mli: Strategy
