lib/rejuv/strategy.ml: Format String
