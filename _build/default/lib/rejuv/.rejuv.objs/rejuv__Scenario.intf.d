lib/rejuv/scenario.mli: Calibration Guest Hw Netsim Simkit Xenvmm
