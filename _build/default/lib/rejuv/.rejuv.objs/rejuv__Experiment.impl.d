lib/rejuv/experiment.ml: Availability Cold_reboot Downtime_model Float Guest List Netsim Option Printf Saved_reboot Scenario Simkit Strategy String Warm_reboot Xenvmm
