lib/rejuv/strategy.mli: Format
