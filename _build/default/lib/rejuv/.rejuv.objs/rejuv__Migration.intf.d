lib/rejuv/migration.mli: Guest Scenario Xenvmm
