lib/rejuv/availability.mli: Format Strategy
