lib/rejuv/report.mli: Format
