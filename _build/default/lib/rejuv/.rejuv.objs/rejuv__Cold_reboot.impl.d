lib/rejuv/cold_reboot.ml: Calibration Guest List Scenario Simkit Xenvmm
