lib/rejuv/policy.mli: Strategy Xenvmm
