lib/rejuv/cluster_sim.mli: Calibration Netsim Scenario Simkit Strategy
