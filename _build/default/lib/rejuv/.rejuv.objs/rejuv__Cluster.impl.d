lib/rejuv/cluster.ml: Float List Strategy
