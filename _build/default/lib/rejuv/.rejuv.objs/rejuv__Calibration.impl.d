lib/rejuv/calibration.ml: Guest Hw Simkit Stdlib Xenvmm
