lib/rejuv/availability.ml: Float Format Simkit Strategy
