lib/rejuv/downtime_model.mli: Format Simkit
