lib/rejuv/report.ml: Availability Experiment Format List Printf Simkit Strategy
