lib/rejuv/calibration.mli: Guest Hw Xenvmm
