lib/rejuv/experiment.mli: Calibration Downtime_model Scenario Strategy
