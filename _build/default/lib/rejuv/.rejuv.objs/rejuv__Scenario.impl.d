lib/rejuv/scenario.ml: Calibration Guest Hw List Netsim Printf Simkit Xenvmm
