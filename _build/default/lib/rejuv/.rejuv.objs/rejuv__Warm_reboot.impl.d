lib/rejuv/warm_reboot.ml: Calibration Guest Hw List Scenario Simkit Xenvmm
