lib/rejuv/warm_reboot.mli: Scenario Simkit
