lib/rejuv/migration.ml: Guest Hw List Scenario Simkit Stdlib Xenvmm
