lib/rejuv/policy.ml: Float List Strategy Xenvmm
