(** The warm-VM reboot — the paper's contribution.

    Sequence (Sections 3.1 and 4):

    + dom0 runs its shutdown script — guest services keep answering,
      which alone buys several seconds of uptime over the cold path;
    + the VMM (not dom0) sends suspend events to every domain U and
      freezes each memory image in place (on-memory suspend);
    + the VMM reboots itself through the xexec quick-reload path — no
      hardware reset, frozen images re-reserved before the scrub;
    + dom0 boots; the toolstack resumes each domain U from its frozen
      image (on-memory resume); page caches and processes are intact;
    + optionally, the transient network degradation Xen shows after
      creating many domains at once is modelled for
      [warm_artifact_duration_s].

    Trace spans emitted (on the host trace): ["pre-reboot tasks"],
    ["vmm reboot"], ["post-reboot tasks"] plus the finer-grained spans
    from the VMM layer. *)

val execute : Scenario.t -> Simkit.Process.task
(** Run one warm-VM reboot of the scenario's host. The task completes
    when every VM answers again (and any artifact window has been set
    up — the artifact outlives the task). *)
