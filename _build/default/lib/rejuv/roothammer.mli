(** RootHammer: warm-VM reboot for VMM rejuvenation — top-level façade.

    Typical use:

    {[
      let scenario =
        Rejuv.Scenario.create ~vm_count:11
          ~vm_mem_bytes:(Simkit.Units.gib 1) ~workload:Rejuv.Scenario.Ssh ()
      in
      Rejuv.Roothammer.start_and_run scenario;
      let run =
        Rejuv.Experiment.run_reboot ~strategy:Rejuv.Strategy.Warm
          ~vm_count:11 ~vm_mem_bytes:(Simkit.Units.gib 1) ()
      in
      Format.printf "downtime: %.1f s@." run.Rejuv.Experiment.downtime_mean_s
    ]} *)

val version : string

val rejuvenate : Scenario.t -> strategy:Strategy.t -> Simkit.Process.task
(** One VMM rejuvenation of a running scenario with the given
    strategy. *)

val start_and_run : Scenario.t -> unit
(** Boot the scenario's testbed and drive the engine until it is fully
    up. Convenience for examples and quick scripts. *)

val rejuvenate_blocking : Scenario.t -> strategy:Strategy.t -> float
(** Run one rejuvenation to completion, driving the engine; returns the
    wall-clock (simulated) duration of the whole procedure. Safe with
    perpetual background processes (probers, workloads): the engine is
    stepped, not drained. *)

val settle : Scenario.t -> seconds:float -> unit
(** Advance the engine a fixed amount of simulated time — e.g. to let
    probers observe a recovery before reading their measurements. *)
