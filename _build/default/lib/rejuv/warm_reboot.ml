module Vmm = Xenvmm.Vmm

let resume_all scenario k =
  let vmm = Scenario.vmm scenario in
  let cal = Scenario.calibration scenario in
  let engine = Scenario.engine scenario in
  let suspended =
    List.filter (fun v -> not (Scenario.vm_is_driver v)) (Scenario.vms scenario)
  in
  (* xend resumes the domains one at a time. *)
  let resume_one v k =
    Simkit.Process.delay engine cal.Calibration.resume_dispatch_s (fun () ->
        Vmm.resume_domain_on_memory vmm (Scenario.vm_domain v) (function
          | Ok () -> k ()
          | Error e -> failwith (Vmm.error_message e)))
  in
  Simkit.Process.seq (List.map resume_one suspended) k

let apply_network_artifact scenario =
  let cal = Scenario.calibration scenario in
  if
    cal.Calibration.enable_warm_artifact
    && List.length (Scenario.vms scenario) > 1
  then begin
    let nic = (Scenario.host scenario).Hw.Host.nic in
    Hw.Nic.set_degradation nic ~factor:cal.Calibration.warm_artifact_factor;
    ignore
      (Simkit.Engine.schedule (Scenario.engine scenario)
         ~delay:cal.Calibration.warm_artifact_duration_s (fun () ->
           Hw.Nic.clear_degradation nic))
  end

(* Driver domains cannot be suspended (Section 7): like the cold path,
   they are shut down before the reload and re-provisioned after. *)
let shutdown_drivers scenario drivers k =
  let vmm = Scenario.vmm scenario in
  Simkit.Process.par
    (List.map (fun v -> Guest.Kernel.shutdown (Scenario.vm_kernel v)) drivers)
    (fun () ->
      Simkit.Process.par
        (List.map
           (fun v k -> Vmm.destroy_domain vmm (Scenario.vm_domain v) k)
           drivers)
        k)

let reprovision_drivers scenario drivers k =
  Simkit.Process.par
    (List.map (fun v -> Scenario.provision_vm scenario v) drivers)
    k

let execute scenario k =
  let vmm = Scenario.vmm scenario in
  let cal = Scenario.calibration scenario in
  let tr = Scenario.trace scenario in
  Simkit.Trace.instant tr "reboot command (warm)";
  let drivers = List.filter Scenario.vm_is_driver (Scenario.vms scenario) in
  let suspend k =
    let pre = Simkit.Trace.begin_span tr "pre-reboot tasks" in
    Vmm.suspend_all_on_memory vmm (fun () ->
        Simkit.Trace.end_span tr pre;
        k ())
  in
  let dom0_down k = Vmm.shutdown_dom0 vmm k in
  (* RootHammer delays the suspend until after dom0's shutdown so the
     services answer as long as possible; the ablation knob restores the
     original-Xen ordering where dom0 drives the suspends while it is
     itself going down. *)
  let preamble k =
    if cal.Calibration.suspend_before_dom0_shutdown then
      suspend (fun () -> dom0_down k)
    else dom0_down (fun () -> suspend k)
  in
  (* dom0 stages the new executable image (xexec) while it is still up,
     so the image's disk read stays outside the outage. *)
  let stage_image k =
    Vmm.xexec_load vmm (function
      | Ok () -> k ()
      | Error e -> failwith (Vmm.error_message e))
  in
  stage_image (fun () ->
  shutdown_drivers scenario drivers (fun () ->
      preamble (fun () ->
          let reboot = Simkit.Trace.begin_span tr "vmm reboot" in
          Vmm.quick_reload vmm (function
            | Error e -> failwith (Vmm.error_message e)
            | Ok () ->
              Vmm.boot_dom0 vmm (fun () ->
                  Simkit.Trace.end_span tr reboot;
                  let post = Simkit.Trace.begin_span tr "post-reboot tasks" in
                  resume_all scenario (fun () ->
                      reprovision_drivers scenario drivers (fun () ->
                          Simkit.Trace.end_span tr post;
                          apply_network_artifact scenario;
                          k ())))))))
