type entry = {
  metric : string;
  paper : string;
  measured : string;
  holds : bool;
}

type t = {
  entries : entry list;
  vm_count : int;
  generated_after_s : float;
}

let within ~lo ~hi v = v >= lo && v <= hi

let seconds v = Printf.sprintf "%.1f s" v
let percent v = Printf.sprintf "%.0f %%" (100.0 *. v)

let run ?(vm_count = 11) () =
  let gib = Simkit.Units.gib in
  let elapsed = ref 0.0 in
  let note run_s = elapsed := !elapsed +. run_s in
  (* Section 5.2 *)
  let reload = Experiment.quick_reload_effect () in
  note (reload.Experiment.quick_reload_s +. reload.Experiment.hardware_reset_s);
  (* Figure 6a at the requested scale *)
  let downtime strategy =
    let r =
      Experiment.run_reboot ~strategy ~vm_count ~vm_mem_bytes:(gib 1) ()
    in
    note r.Experiment.downtime_mean_s;
    r.Experiment.downtime_mean_s
  in
  let warm = downtime Strategy.Warm in
  let saved = downtime Strategy.Saved in
  let cold = downtime Strategy.Cold in
  (* Figure 8 degradation *)
  let fig8 = Experiment.fig8_file ~strategy:Strategy.Cold () in
  let fig8_warm = Experiment.fig8_file ~strategy:Strategy.Warm () in
  (* Section 5.3 availability *)
  let avail strategy vmm_downtime_s =
    Availability.availability
      (Availability.paper_example strategy ~vmm_downtime_s)
  in
  let a_warm = avail Strategy.Warm warm in
  let entries =
    [
      {
        metric = "quick reload (5.2)";
        paper = "11 s";
        measured = seconds reload.Experiment.quick_reload_s;
        holds = within ~lo:9.0 ~hi:13.0 reload.Experiment.quick_reload_s;
      };
      {
        metric = "hardware reset (5.2)";
        paper = "59 s";
        measured = seconds reload.Experiment.hardware_reset_s;
        holds = within ~lo:53.0 ~hi:65.0 reload.Experiment.hardware_reset_s;
      };
      {
        metric = Printf.sprintf "warm downtime, n=%d (6a)" vm_count;
        paper = (if vm_count = 11 then "42 s" else "~42 s (flat in n)");
        measured = seconds warm;
        holds = within ~lo:34.0 ~hi:50.0 warm;
      };
      {
        metric = Printf.sprintf "saved downtime, n=%d (6a)" vm_count;
        paper = (if vm_count = 11 then "429 s" else "grows ~25 s/VM");
        measured = seconds saved;
        (* The gap over cold widens with n (~21 vs ~3.8 s/VM); at any
           scale saved must be the worst strategy by a wide margin. *)
        holds = saved > cold && saved > 3.0 *. warm;
      };
      {
        metric = Printf.sprintf "cold downtime, n=%d (6a)" vm_count;
        paper = (if vm_count = 11 then "157 s" else "grows ~3.8 s/VM");
        measured = seconds cold;
        holds = cold > 2.5 *. warm;
      };
      {
        metric = "cold file-read degradation (8a)";
        paper = "91 %";
        measured = percent fig8.Experiment.degradation;
        holds = within ~lo:0.85 ~hi:0.95 fig8.Experiment.degradation;
      };
      {
        metric = "warm file-read degradation (8a)";
        paper = "0 %";
        measured = percent fig8_warm.Experiment.degradation;
        holds = fig8_warm.Experiment.degradation < 0.02;
      };
      {
        metric = "warm availability (5.3)";
        paper = "99.993 % (4 nines)";
        measured = Format.asprintf "%a" Availability.pp_percent a_warm;
        holds = Availability.nines a_warm >= 4;
      };
    ]
  in
  { entries; vm_count; generated_after_s = !elapsed }

let all_hold t = List.for_all (fun e -> e.holds) t.entries

let pp ppf t =
  Format.fprintf ppf
    "RootHammer reproduction report (%d VMs, ~%.0f simulated seconds)@.@."
    t.vm_count t.generated_after_s;
  Format.fprintf ppf "%-36s %-22s %-14s %s@." "metric" "paper" "measured"
    "holds";
  List.iter
    (fun e ->
      Format.fprintf ppf "%-36s %-22s %-14s %s@." e.metric e.paper e.measured
        (if e.holds then "yes" else "NO"))
    t.entries;
  Format.fprintf ppf "@.verdict: %s@."
    (if all_hold t then "reproduction holds"
     else "DEVIATIONS FOUND - see EXPERIMENTS.md")
