(** Availability arithmetic for combined OS + VMM rejuvenation
    (Section 5.3's example).

    OS rejuvenation is time-based at a fixed interval; VMM rejuvenation
    happens every [vmm_rejuv_interval_s]. With the cold-VM reboot the
    VMM rejuvenation *includes* an OS reboot, so the OS clock restarts
    and a fraction [alpha] of one OS rejuvenation is saved per VMM
    rejuvenation; warm and saved reboots leave the OS schedule alone. *)

type params = {
  os_rejuv_interval_s : float;
  os_rejuv_downtime_s : float;
  vmm_rejuv_interval_s : float;
  vmm_rejuv_downtime_s : float;
  alpha : float;
      (** Expected elapsed fraction of the OS interval when the VMM
          rejuvenation lands (0 < alpha <= 1). *)
  strategy : Strategy.t;
}

val paper_example : Strategy.t -> vmm_downtime_s:float -> params
(** Weekly OS rejuvenation at 33.6 s, VMM rejuvenation every 4 weeks,
    alpha = 0.5 — the Section 5.3 setting. *)

val downtime_per_vmm_interval : params -> float

val availability : params -> float
(** Steady-state availability in [0, 1]. *)

val nines : float -> int
(** Number of leading nines: [nines 0.99993 = 4]. *)

val pp_percent : Format.formatter -> float -> unit
(** e.g. ["99.993 %"]. *)
