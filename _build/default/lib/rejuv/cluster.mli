(** Cluster-environment throughput model (Section 6, Figure 9).

    [m] hosts each deliver throughput [p] behind a load balancer. The
    module produces the piecewise-constant total-throughput timelines
    for a VMM rejuvenation under:

    - the warm-VM reboot: a short dip to [(m-1)p];
    - the cold-VM reboot: a long dip to [(m-1)p] followed by a
      [(m-delta)p] window while caches refill (delta = 0.69 in the
      paper's measurement);
    - live migration: a permanently reserved destination host caps the
      cluster at [(m-1)p]; migrating dips to [(m-1.12)p] for the
      transfer period (~17 minutes for 11 VM × 1 GiB at the rates
      reported by Clark et al.). *)

type params = {
  m : int;  (** number of hosts *)
  p : float;  (** per-host throughput *)
  warm_outage_s : float;  (** 42 s in the paper's measurement *)
  cold_outage_s : float;  (** 241 s (JBoss, 11 VMs) *)
  cold_delta : float;  (** post-reboot degradation, 0.69 *)
  cold_degraded_s : float;  (** cache refill window *)
  migration_degradation : float;  (** 0.12 during live migration *)
  migration_duration_s : float;  (** ~17 min for 11 × 1 GiB VMs *)
}

val paper_params : ?m:int -> ?p:float -> unit -> params

type timeline = (float * float) list
(** Breakpoints (time, throughput from this time on), time-ordered,
    starting at 0. *)

val throughput_at : timeline -> float -> float

val warm_timeline : params -> reboot_at:float -> timeline
val cold_timeline : params -> reboot_at:float -> timeline
val migration_timeline : params -> migrate_at:float -> timeline

val lost_capacity : params -> timeline -> horizon_s:float -> float
(** Integral of [m*p - throughput(t)] over [0, horizon] — total
    work lost versus an ideal never-rebooted cluster of [m] hosts
    (for migration this includes the permanently reserved spare). *)

val rolling_rejuvenation :
  params -> strategy:Strategy.t -> start_at:float -> gap_s:float -> timeline
(** Reboot each host in turn, [gap_s] apart, with the given strategy's
    outage/degradation profile. *)
