type params = {
  os_rejuv_interval_s : float;
  os_rejuv_downtime_s : float;
  vmm_rejuv_interval_s : float;
  vmm_rejuv_downtime_s : float;
  alpha : float;
  strategy : Strategy.t;
}

let paper_example strategy ~vmm_downtime_s =
  {
    os_rejuv_interval_s = Simkit.Units.weeks 1.0;
    os_rejuv_downtime_s = 33.6;
    vmm_rejuv_interval_s = Simkit.Units.weeks 4.0;
    vmm_rejuv_downtime_s = vmm_downtime_s;
    alpha = 0.5;
    strategy;
  }

let validate p =
  if p.os_rejuv_interval_s <= 0.0 || p.vmm_rejuv_interval_s <= 0.0 then
    invalid_arg "Availability: non-positive interval";
  if p.alpha <= 0.0 || p.alpha > 1.0 then
    invalid_arg "Availability: alpha outside (0, 1]"

let downtime_per_vmm_interval p =
  validate p;
  let os_rejuvenations = p.vmm_rejuv_interval_s /. p.os_rejuv_interval_s in
  (* A cold VMM reboot doubles as an OS rejuvenation, cancelling the
     [alpha] fraction of one scheduled OS reboot. *)
  let os_count =
    if Strategy.restarts_services p.strategy then os_rejuvenations -. p.alpha
    else os_rejuvenations
  in
  (os_count *. p.os_rejuv_downtime_s) +. p.vmm_rejuv_downtime_s

let availability p =
  let down = downtime_per_vmm_interval p in
  1.0 -. (down /. p.vmm_rejuv_interval_s)

let nines a =
  if a >= 1.0 then invalid_arg "Availability.nines: availability >= 1";
  if a <= 0.0 then 0
  else
    let u = 1.0 -. a in
    int_of_float (Float.floor (-.log10 u +. 1e-9))

let pp_percent ppf a = Format.fprintf ppf "%.3f %%" (a *. 100.0)
