(** The three VMM rejuvenation strategies the paper compares. *)

type t =
  | Warm  (** warm-VM reboot: on-memory suspend/resume + quick reload *)
  | Saved  (** saved-VM reboot: stock Xen suspend/resume through disk *)
  | Cold  (** cold-VM reboot: guest shutdown + hardware reset + boot *)

val all : t list
val name : t -> string
val of_string : string -> t option
val pp : Format.formatter -> t -> unit

val preserves_memory_images : t -> bool
(** Whether guest memory images (and hence page caches and running
    processes) survive the VMM reboot. *)

val requires_hardware_reset : t -> bool
val restarts_services : t -> bool
