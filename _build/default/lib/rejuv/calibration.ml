type t = {
  host : Hw.Host.config;
  vmm_timing : Xenvmm.Timing.t;
  kernel_timing : Guest.Kernel.timing;
  xend_stop_delay_s : float;
  save_dispatch_delay_s : float;
  resume_dispatch_s : float;
  warm_artifact_factor : float;
  warm_artifact_duration_s : float;
  enable_warm_artifact : bool;
  scrub_free_only : bool;
  suspend_before_dom0_shutdown : bool;
  parallel_restore : bool;
}

let default =
  {
    host = Hw.Host.default_config;
    vmm_timing = Xenvmm.Timing.default;
    kernel_timing = Guest.Kernel.default_timing;
    xend_stop_delay_s = 6.0;
    save_dispatch_delay_s = 2.0;
    resume_dispatch_s = 0.08;
    warm_artifact_factor = 0.15;
    warm_artifact_duration_s = 25.0;
    enable_warm_artifact = true;
    scrub_free_only = true;
    suspend_before_dom0_shutdown = false;
    parallel_restore = false;
  }

let modern =
  {
    default with
    host =
      {
        Hw.Host.mem_bytes = Simkit.Units.gib 128;
        scrub_seconds_per_gib = 0.05;
        disk_read_mib_per_s = 3000.0;
        disk_write_mib_per_s = 2500.0;
        disk_seek_ms = 0.02;
        disk_random_penalty = 1.1;
        disk_capacity_bytes = 2_000_000_000_000;
        nic_gbit_per_s = 25.0;
        (* Server firmware: long base POST, quick per-GiB check. *)
        bios =
          Hw.Bios.v ~base_s:60.0 ~memory_check_s_per_gib:0.2
            ~scsi_init_s:10.0;
        cpu_capacity = 1.0;
      };
    vmm_timing =
      {
        Xenvmm.Timing.default with
        Xenvmm.Timing.vmm_load_s = 3.0;
        dom0_boot_s = 15.0;
        dom0_shutdown_s = 8.0;
      };
  }

let with_memory t ~gib =
  (* A bigger-memory host also needs storage that can hold full-memory
     save images (the saved-VM path writes every VM's RAM to disk). *)
  let disk_capacity_bytes =
    Stdlib.max t.host.Hw.Host.disk_capacity_bytes (4 * Simkit.Units.gib gib)
  in
  {
    t with
    host =
      {
        t.host with
        Hw.Host.mem_bytes = Simkit.Units.gib gib;
        disk_capacity_bytes;
      };
  }
