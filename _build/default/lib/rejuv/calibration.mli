(** One place for every timing constant of the simulated testbed.

    Defaults reproduce the paper's Section 5 environment (two dual-core
    Opteron 280s, 12 GB RAM, 15 krpm SCSI, GbE) via the derivation in
    DESIGN.md §5. Experiments may override pieces (e.g. installed
    memory) without touching the rest. *)

type t = {
  host : Hw.Host.config;
  vmm_timing : Xenvmm.Timing.t;
  kernel_timing : Guest.Kernel.timing;
  xend_stop_delay_s : float;
      (** Delay between the reboot command in dom0 and the moment the
          toolstack actually reaches the guests (cold path). *)
  save_dispatch_delay_s : float;
      (** Delay before dom0-driven suspends start (saved path). *)
  resume_dispatch_s : float;
      (** Per-domain toolstack overhead while resuming serially. *)
  warm_artifact_factor : float;
      (** Fraction of NIC bandwidth available during the post-warm-
          reboot network degradation Xen exhibits after creating many
          domains at once. *)
  warm_artifact_duration_s : float;
  enable_warm_artifact : bool;
  (* Ablation knobs — defaults are the paper's design; flipping one
     isolates the contribution of that design choice. *)
  scrub_free_only : bool;
      (** Quick reload scrubs only free memory (skipping preserved
          frames). [false]: scrub everything — kills the negative slope
          of [reboot_vmm(n)]. *)
  suspend_before_dom0_shutdown : bool;
      (** [true]: original-Xen ordering, where domain Us are suspended
          while dom0 shuts down — services go dark ~14 s earlier. *)
  parallel_restore : bool;
      (** [true]: saved-VM reboot restores all images concurrently
          (interleaved disk reads) instead of xend's serial restore. *)
}

val default : t

val modern : t
(** A 2020s server profile for sensitivity analysis: 128 GiB RAM, NVMe
    storage (3 GB/s reads), 25 GbE, faster memory scrubbing but a
    longer server POST, quicker dom0 boot. Guest-side timings are kept
    from the paper so only the platform changes. *)

val with_memory : t -> gib:int -> t
(** Same testbed with a different amount of installed RAM (adjusts the
    BIOS memory check and scrub durations implicitly). *)
