(** One-page reproduction report.

    Runs the headline experiments (quick reload, downtime at a given
    scale, availability, post-reboot degradation) and renders a compact
    paper-vs-measured summary — the "did the reproduction hold?" view
    used by the CLI's [report] command and release checks. *)

type entry = {
  metric : string;
  paper : string;
  measured : string;
  holds : bool;  (** measured within the acceptance band *)
}

type t = {
  entries : entry list;
  vm_count : int;
  generated_after_s : float;  (** simulated seconds spent measuring *)
}

val run : ?vm_count:int -> unit -> t
(** Produce the report (runs several simulations; seconds of host
    time). [vm_count] defaults to the paper's 11. *)

val all_hold : t -> bool

val pp : Format.formatter -> t -> unit
