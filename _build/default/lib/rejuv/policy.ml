type event =
  | Os_rejuvenation of { vm : int; at : float }
  | Vmm_rejuvenation of { at : float }

let event_time = function
  | Os_rejuvenation { at; _ } | Vmm_rejuvenation { at } -> at

let schedule ~strategy ~vm_count ~os_interval_s ~vmm_interval_s ~horizon_s =
  if os_interval_s <= 0.0 || vmm_interval_s <= 0.0 then
    invalid_arg "Policy.schedule: non-positive interval";
  if vm_count < 0 then invalid_arg "Policy.schedule: negative vm_count";
  let entangled = Strategy.restarts_services strategy in
  let events = ref [] in
  (* VMM rejuvenations at fixed multiples of the interval. *)
  let rec vmm_events at =
    if at < horizon_s then begin
      events := Vmm_rejuvenation { at } :: !events;
      vmm_events (at +. vmm_interval_s)
    end
  in
  vmm_events vmm_interval_s;
  let vmm_times =
    List.filter_map
      (function Vmm_rejuvenation { at } -> Some at | _ -> None)
      !events
    |> List.sort Float.compare
  in
  (* Each VM's OS clock: advances by the interval; a cold VMM
     rejuvenation reboots the OS too, restarting the clock from that
     point. *)
  for vm = 0 to vm_count - 1 do
    let rec os_events clock_start =
      let next = clock_start +. os_interval_s in
      if next < horizon_s then begin
        let reset_between =
          if entangled then
            List.find_opt
              (fun tv -> tv > clock_start && tv <= next)
              vmm_times
          else None
        in
        match reset_between with
        | Some tv ->
          (* The VMM rejuvenation rebooted this OS; clock restarts. *)
          os_events tv
        | None ->
          events := Os_rejuvenation { vm; at = next } :: !events;
          os_events next
      end
    in
    os_events 0.0
  done;
  List.sort
    (fun a b -> Float.compare (event_time a) (event_time b))
    !events

let os_rejuvenation_count events =
  List.length
    (List.filter (function Os_rejuvenation _ -> true | _ -> false) events)

let vmm_rejuvenation_count events =
  List.length
    (List.filter (function Vmm_rejuvenation _ -> true | _ -> false) events)

let total_downtime ~events ~os_downtime_s ~vmm_downtime_s
    ~overlapping_os_absorbed =
  ignore overlapping_os_absorbed;
  List.fold_left
    (fun acc -> function
      | Os_rejuvenation _ -> acc +. os_downtime_s
      | Vmm_rejuvenation _ -> acc +. vmm_downtime_s)
    0.0 events

module Load = struct
  type profile = (float * float) list

  let level_at profile time =
    List.fold_left
      (fun acc (t, v) -> if t <= time then v else acc)
      0.0 profile

  let cost profile ~start ~duration =
    if duration < 0.0 then invalid_arg "Policy.Load.cost: negative duration";
    let stop = start +. duration in
    (* Sum over the piecewise-constant segments intersecting the
       window. *)
    let rec go acc = function
      | [] -> acc
      | (t, v) :: rest ->
        let seg_end =
          match rest with (t2, _) :: _ -> t2 | [] -> infinity
        in
        let lo = Float.max t start and hi = Float.min seg_end stop in
        let acc = if hi > lo then acc +. (v *. (hi -. lo)) else acc in
        go acc rest
    in
    go 0.0 profile

  let best_window profile ~duration ~horizon =
    if duration <= 0.0 then
      invalid_arg "Policy.Load.best_window: non-positive duration";
    if horizon < duration then
      invalid_arg "Policy.Load.best_window: horizon too short";
    (* For a piecewise-constant profile the optimum is attained with the
       window's start or end aligned to a breakpoint (or at the domain
       edges), so only those candidates need evaluating. *)
    let latest = horizon -. duration in
    let candidates =
      0.0 :: latest
      :: List.concat_map
           (fun (t, _) -> [ t; t -. duration ])
           profile
      |> List.filter (fun s -> s >= 0.0 && s <= latest)
      |> List.sort_uniq Float.compare
    in
    List.fold_left
      (fun (best_s, best_c) s ->
        let c = cost profile ~start:s ~duration in
        if c < best_c then (s, c) else (best_s, best_c))
      (0.0, cost profile ~start:0.0 ~duration)
      candidates
end

module Trigger = struct
  type decision = Rejuvenate_now | Rejuvenate_within of float | No_action

  let evaluate aging ~now ~lead_time_s =
    if lead_time_s < 0.0 then invalid_arg "Trigger.evaluate: negative lead";
    match Xenvmm.Aging.predict_exhaustion aging with
    | None -> No_action
    | Some at ->
      let remaining = at -. now in
      if remaining <= lead_time_s then Rejuvenate_now
      else Rejuvenate_within remaining
  end
