(** The paper's downtime model (Section 3.2) and its fitted instance
    (Section 5.6).

    With [n] VMs:
    - warm: [d_w(n) = reboot_vmm(n) + resume(n)]
    - cold: [d_c(n) = reset_hw + reboot_vmm(0) + reboot_os(n)
                      - reboot_os(1) * alpha]
    - reduction: [r(n) = d_c(n) - d_w(n)].

    The paper's fit on the 12 GB / 11 VM testbed:
    [reboot_vmm(n) = -0.55 n + 43], [resume(n) = 0.43 n - 0.07],
    [reboot_os(n) = 3.8 n + 13], [boot(n) = 3.4 n + 2.8],
    [reset_hw = 47] ⇒ [r(n) = 3.9 n + 60 - 17 alpha]. *)

type fits = {
  reboot_vmm : Simkit.Stat.linear;
      (** quick-reload VMM reboot time vs number of suspended VMs *)
  resume : Simkit.Stat.linear;  (** on-memory suspend+resume vs n *)
  reboot_os : Simkit.Stat.linear;  (** shutdown+boot of n OSes *)
  boot : Simkit.Stat.linear;  (** boot only, reported alongside *)
  reset_hw : float;
}

val paper_fits : fits
(** The constants printed in Section 5.6. *)

val d_warm : fits -> n:int -> float
val d_cold : fits -> n:int -> alpha:float -> float

val reduction : fits -> n:int -> alpha:float -> float
(** [d_cold - d_warm]; the paper's r(n). *)

type reduction_formula = {
  n_slope : float;
  constant : float;
  alpha_coefficient : float;
}
(** [r(n) = n_slope * n + constant + alpha_coefficient * alpha]. *)

val reduction_as_formula : fits -> reduction_formula

val always_positive : fits -> max_n:int -> bool
(** Whether r(n) > 0 for all 1 <= n <= max_n and 0 < alpha <= 1 — the
    paper's closing claim for its configuration. *)

val fit :
  reboot_vmm:(float * float) list ->
  resume:(float * float) list ->
  reboot_os:(float * float) list ->
  boot:(float * float) list ->
  reset_hw:float ->
  fits
(** Least-squares fit from measured (n, seconds) points. *)

val pp : Format.formatter -> fits -> unit
