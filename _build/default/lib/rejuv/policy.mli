(** Rejuvenation scheduling policies.

    {!schedule} produces the event timeline of Figure 2: with the
    warm-VM reboot the VMM rejuvenation is independent of each OS's
    time-based rejuvenation; with the cold-VM reboot the VMM
    rejuvenation reboots every OS and restarts their clocks.

    {!Trigger} is the proactive side: decide when a VMM needs
    rejuvenating from the aging model's heap-exhaustion forecast,
    instead of (or in addition to) fixed intervals. *)

type event =
  | Os_rejuvenation of { vm : int; at : float }
  | Vmm_rejuvenation of { at : float }

val event_time : event -> float

val schedule :
  strategy:Strategy.t ->
  vm_count:int ->
  os_interval_s:float ->
  vmm_interval_s:float ->
  horizon_s:float ->
  event list
(** All rejuvenation events in [0, horizon), time-ordered. OS clocks
    start at 0 and, for strategies where the VMM rejuvenation includes
    an OS reboot (cold), restart at each VMM rejuvenation. *)

val os_rejuvenation_count : event list -> int
val vmm_rejuvenation_count : event list -> int

val total_downtime :
  events:event list ->
  os_downtime_s:float ->
  vmm_downtime_s:float ->
  overlapping_os_absorbed:bool ->
  float
(** Sum the downtime of a schedule. With [overlapping_os_absorbed]
    (cold), OS rejuvenations that coincide with a VMM rejuvenation are
    already part of the VMM downtime and are not double-counted. *)

(** Load-aware scheduling: rejuvenation costs work proportional to the
    load it interrupts, so pick the quietest window (the "time and load
    based" policies of Garg et al. that the paper builds on). *)
module Load : sig
  type profile = (float * float) list
  (** Piecewise-constant forecast load: (from this time, load level),
      time-ordered, first breakpoint at 0. *)

  val level_at : profile -> float -> float

  val cost : profile -> start:float -> duration:float -> float
  (** Integral of the load over [start, start + duration] — the work
      displaced by rejuvenating there. *)

  val best_window :
    profile -> duration:float -> horizon:float -> float * float
  (** [(start, cost)] of the cheapest window of the given duration whose
      start lies in [0, horizon - duration]. Raises [Invalid_argument]
      when the horizon cannot fit the window. *)
end

(** Aging-driven proactive triggering. *)
module Trigger : sig
  type decision = Rejuvenate_now | Rejuvenate_within of float | No_action

  val evaluate :
    Xenvmm.Aging.t -> now:float -> lead_time_s:float -> decision
  (** [Rejuvenate_now] when the forecast exhaustion is within
      [lead_time_s] (or the heap is already exhausted);
      [Rejuvenate_within dt] when a trend exists but is further out;
      [No_action] when no upward trend is visible. *)
end
