let version = "1.0.0"

let rejuvenate scenario ~strategy =
  match strategy with
  | Strategy.Warm -> Warm_reboot.execute scenario
  | Strategy.Saved -> Saved_reboot.execute scenario
  | Strategy.Cold -> Cold_reboot.execute scenario

let start_and_run scenario =
  let engine = Scenario.engine scenario in
  let started = ref false in
  Scenario.start scenario (fun () -> started := true);
  (* Step, don't drain: perpetual processes (aging injectors, probers)
     keep the queue non-empty forever. *)
  while (not !started) && Simkit.Engine.step engine do () done;
  if not !started then failwith "Roothammer.start_and_run: start incomplete"

let rejuvenate_blocking scenario ~strategy =
  let engine = Scenario.engine scenario in
  let t0 = Simkit.Engine.now engine in
  let finished = ref false in
  rejuvenate scenario ~strategy (fun () -> finished := true);
  (* Step rather than drain: perpetual processes (probers, workload
     generators) keep the queue non-empty forever. *)
  while (not !finished) && Simkit.Engine.step engine do () done;
  if not !finished then
    failwith "Roothammer.rejuvenate_blocking: reboot incomplete";
  Simkit.Engine.now engine -. t0

let settle scenario ~seconds =
  let engine = Scenario.engine scenario in
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. seconds) engine
