type reboot_run = {
  strategy : Strategy.t;
  vm_count : int;
  vm_mem_bytes : int;
  pre_task_s : float;
  vmm_reboot_s : float;
  post_task_s : float;
  downtimes : float list;
  downtime_mean_s : float;
  downtime_max_s : float;
  spans : (string * float * float) list;
}

let strategy_task strategy scenario =
  match strategy with
  | Strategy.Warm -> Warm_reboot.execute scenario
  | Strategy.Saved -> Saved_reboot.execute scenario
  | Strategy.Cold -> Cold_reboot.execute scenario

let span_duration spans label =
  List.fold_left
    (fun acc (l, start, stop) ->
      if String.equal l label then acc +. (stop -. start) else acc)
    0.0 spans

(* Step the engine until the flag is set; stop (and fail) once simulated
   time passes the deadline. Stepping — rather than draining to the
   deadline — stops immediately on completion even with perpetual
   processes (probers, workload generators) in flight. *)
let run_until_done engine ~flag ~deadline =
  while
    (not !flag)
    && Simkit.Engine.now engine <= deadline
    && Simkit.Engine.step engine
  do
    ()
  done;
  if not !flag then
    failwith
      (Printf.sprintf "experiment did not complete by t=%.1f" deadline)

let boot_testbed scenario =
  let started = ref false in
  Scenario.start scenario (fun () -> started := true);
  Simkit.Engine.run (Scenario.engine scenario);
  if not !started then failwith "testbed failed to start"

let run_reboot ?calibration ?(workload = Scenario.Ssh) ?seed
    ?(settle_s = 20.0) ?(horizon_s = 1200.0) ~strategy ~vm_count
    ~vm_mem_bytes () =
  let scenario =
    Scenario.create ?calibration ?seed ~vm_count ~vm_mem_bytes ~workload ()
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let probers = Scenario.attach_probers scenario () in
  let finished = ref false in
  ignore
    (Simkit.Engine.schedule engine ~delay:settle_s (fun () ->
         strategy_task strategy scenario (fun () -> finished := true)));
  run_until_done engine ~flag:finished
    ~deadline:(Simkit.Engine.now engine +. settle_s +. horizon_s);
  (* Let the probers observe the recovered services. *)
  Simkit.Engine.run
    ~until:(Simkit.Engine.now engine +. 2.0)
    engine;
  List.iter Netsim.Prober.stop probers;
  List.iter
    (fun v ->
      if not (Scenario.vm_is_up v) then
        failwith (Scenario.vm_name v ^ " did not come back"))
    (Scenario.vms scenario);
  let downtimes =
    List.map
      (fun p -> Option.value (Netsim.Prober.longest_outage p) ~default:0.0)
      probers
  in
  let spans = Simkit.Trace.spans (Scenario.trace scenario) in
  let pre_task_s = span_duration spans "pre-reboot tasks" in
  let vmm_reboot_s = span_duration spans "vmm reboot" in
  let post_task_s = span_duration spans "post-reboot tasks" in
  let summary =
    match downtimes with
    | [] -> { Simkit.Stat.count = 0; mean = 0.0; stddev = 0.0; min = 0.0; max = 0.0 }
    | _ -> Simkit.Stat.summarize downtimes
  in
  {
    strategy;
    vm_count;
    vm_mem_bytes;
    pre_task_s;
    vmm_reboot_s;
    post_task_s;
    downtimes;
    downtime_mean_s = summary.Simkit.Stat.mean;
    downtime_max_s = summary.Simkit.Stat.max;
    spans;
  }

(* --- Figures 4 and 5 ---------------------------------------------------- *)

type task_times = {
  x : int;
  onmem_suspend_s : float;
  onmem_resume_s : float;
  xen_save_s : float;
  xen_restore_s : float;
  shutdown_s : float;
  boot_s : float;
}

let task_times_of_runs ~x ~(warm : reboot_run) ~(saved : reboot_run)
    ~(cold : reboot_run) =
  {
    x;
    onmem_suspend_s = span_duration warm.spans "on-memory suspend";
    onmem_resume_s = warm.post_task_s;
    xen_save_s = saved.pre_task_s;
    xen_restore_s = saved.post_task_s;
    shutdown_s = cold.pre_task_s;
    boot_s = cold.post_task_s;
  }

let fig4 ?(mem_gib = [ 1; 3; 5; 7; 9; 11 ]) () =
  List.map
    (fun gib ->
      let run strategy =
        run_reboot ~strategy ~vm_count:1
          ~vm_mem_bytes:(Simkit.Units.gib gib) ()
      in
      task_times_of_runs ~x:gib ~warm:(run Strategy.Warm)
        ~saved:(run Strategy.Saved) ~cold:(run Strategy.Cold))
    mem_gib

let fig5 ?(vm_counts = [ 1; 3; 5; 7; 9; 11 ]) () =
  List.map
    (fun n ->
      let run strategy =
        run_reboot ~strategy ~vm_count:n
          ~vm_mem_bytes:(Simkit.Units.gib 1) ()
      in
      task_times_of_runs ~x:n ~warm:(run Strategy.Warm)
        ~saved:(run Strategy.Saved) ~cold:(run Strategy.Cold))
    vm_counts

(* --- Section 5.2 -------------------------------------------------------- *)

type reload_times = { quick_reload_s : float; hardware_reset_s : float }

(* Time from "shutdown script completed" (dom0 down) to "reboot of the
   VMM completed" (ready to boot dom0), with no domain Us. *)
let measure_vmm_reboot ~quick =
  let scenario =
    Scenario.create ~vm_count:0 ~vm_mem_bytes:(Simkit.Units.gib 1)
      ~workload:Scenario.Ssh ()
  in
  let vmm = Scenario.vmm scenario in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let reboot_done = ref nan in
  let start = ref nan in
  Xenvmm.Vmm.shutdown_dom0 vmm (fun () ->
      start := Simkit.Engine.now engine;
      if quick then
        Xenvmm.Vmm.quick_reload vmm (function
          | Ok () -> reboot_done := Simkit.Engine.now engine
          | Error e -> failwith (Xenvmm.Vmm.error_message e))
      else
        Xenvmm.Vmm.shutdown_vmm vmm (fun () ->
            Xenvmm.Vmm.hardware_reset vmm (fun () ->
                reboot_done := Simkit.Engine.now engine)));
  Simkit.Engine.run engine;
  if Float.is_nan !reboot_done then failwith "VMM reboot did not complete";
  !reboot_done -. !start

let quick_reload_effect () =
  {
    quick_reload_s = measure_vmm_reboot ~quick:true;
    hardware_reset_s = measure_vmm_reboot ~quick:false;
  }

(* --- Figure 6 ----------------------------------------------------------- *)

type fig6_row = {
  n : int;
  warm_downtime_s : float;
  saved_downtime_s : float;
  cold_downtime_s : float;
}

let fig6 ?(vm_counts = [ 1; 3; 5; 7; 9; 11 ]) ~workload () =
  List.map
    (fun n ->
      let run strategy =
        (run_reboot ~workload ~strategy ~vm_count:n
           ~vm_mem_bytes:(Simkit.Units.gib 1) ())
          .downtime_mean_s
      in
      {
        n;
        warm_downtime_s = run Strategy.Warm;
        saved_downtime_s = run Strategy.Saved;
        cold_downtime_s = run Strategy.Cold;
      })
    vm_counts

(* --- Section 5.3 -------------------------------------------------------- *)

let run_os_rejuvenation ?(workload = Scenario.Jboss) () =
  let scenario =
    Scenario.create ~vm_count:1 ~vm_mem_bytes:(Simkit.Units.gib 1) ~workload
      ()
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let probers = Scenario.attach_probers scenario () in
  let finished = ref false in
  ignore
    (Simkit.Engine.schedule engine ~delay:10.0 (fun () ->
         match Scenario.vms scenario with
         | [ vm ] ->
           Guest.Kernel.reboot_os (Scenario.vm_kernel vm) (fun () ->
               finished := true)
         | _ -> assert false));
  run_until_done engine ~flag:finished
    ~deadline:(Simkit.Engine.now engine +. 300.0);
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 2.0) engine;
  List.iter Netsim.Prober.stop probers;
  match probers with
  | [ p ] -> Option.value (Netsim.Prober.longest_outage p) ~default:0.0
  | _ -> assert false

let availability_table ?(os_downtime_s = 33.6) ~vmm_downtimes () =
  List.map
    (fun (strategy, vmm_downtime_s) ->
      let params =
        {
          (Availability.paper_example strategy ~vmm_downtime_s) with
          Availability.os_rejuv_downtime_s = os_downtime_s;
        }
      in
      (strategy, Availability.availability params))
    vmm_downtimes

(* --- Figure 7 ----------------------------------------------------------- *)

type fig7_result = {
  f7_strategy : Strategy.t;
  reboot_command_at : float;
  throughput : (float * float) list;
  f7_spans : (string * float * float) list;
  web_down_at : float option;
  web_up_at : float option;
  chrome_trace_json : string;
}

let fig7 ~strategy () =
  let workload =
    Scenario.Web { file_count = 1000; file_bytes = Simkit.Units.kib 512;
                   warm_cache = true }
  in
  let scenario =
    Scenario.create ~vm_count:11 ~vm_mem_bytes:(Simkit.Units.gib 1) ~workload
      ()
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let epoch = Simkit.Engine.now engine in
  let target_vm = List.hd (Scenario.vms scenario) in
  let rng = Scenario.rng scenario in
  let request k =
    match Scenario.vm_httpd target_vm with
    | Some httpd -> Guest.Httpd.handle_request httpd ~rng k
    | None -> k false
  in
  let load = Netsim.Httperf.create engine ~connections:4 ~request () in
  let prober =
    Netsim.Prober.create engine ~name:"web"
      ~is_up:(fun () -> Scenario.vm_is_up target_vm)
      ()
  in
  Netsim.Prober.start prober;
  Netsim.Httperf.start load;
  let reboot_delay = 20.0 in
  let finished = ref false in
  ignore
    (Simkit.Engine.schedule engine ~delay:reboot_delay (fun () ->
         strategy_task strategy scenario (fun () -> finished := true)));
  run_until_done engine ~flag:finished ~deadline:(epoch +. 600.0);
  (* Observe the post-reboot recovery (and the warm artifact window). *)
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 90.0) engine;
  Netsim.Httperf.stop load;
  Netsim.Prober.stop prober;
  Simkit.Engine.run ~until:(Simkit.Engine.now engine +. 5.0) engine;
  let outage = List.rev (Netsim.Prober.outages prober) in
  let web_down_at, web_up_at =
    match outage with
    | (d, u) :: _ -> (Some (d -. epoch), Some (u -. epoch))
    | [] -> (None, None)
  in
  {
    f7_strategy = strategy;
    reboot_command_at = reboot_delay;
    throughput =
      List.map
        (fun (t, v) -> (t -. epoch, v))
        (Netsim.Httperf.mean_window_throughput load ~every:50);
    f7_spans =
      List.filter_map
        (fun (l, a, b) ->
          if b >= epoch then Some (l, a -. epoch, b -. epoch) else None)
        (Simkit.Trace.spans (Scenario.trace scenario));
    web_down_at;
    web_up_at;
    chrome_trace_json =
      Simkit.Trace.to_chrome_json (Scenario.trace scenario);
  }

(* --- Figure 8 ----------------------------------------------------------- *)

type before_after = {
  first_before : float;
  second_before : float;
  first_after : float;
  second_after : float;
  degradation : float;
}

let degradation_of ~before ~after =
  if before <= 0.0 then 0.0 else Float.max 0.0 (1.0 -. (after /. before))

(* Read a 512 MB file twice, returning MiB/s for each pass. *)
let timed_file_reads scenario vm k =
  let engine = Scenario.engine scenario in
  let kernel = Scenario.vm_kernel vm in
  let fs = Guest.Kernel.filesystem kernel in
  let file =
    Guest.Filesystem.create_file fs ~name:"bigfile" ~bytes:(Simkit.Units.mib 512)
      ()
  in
  (* The paper's setup has the file cached before the first pass. *)
  Guest.Filesystem.warm_file fs file;
  let mib = Simkit.Units.bytes_to_mib (Guest.Filesystem.file_bytes file) in
  let t0 = Simkit.Engine.now engine in
  Guest.Filesystem.read fs file ~access:Guest.Filesystem.Sequential (fun () ->
      let t1 = Simkit.Engine.now engine in
      Guest.Filesystem.read fs file ~access:Guest.Filesystem.Sequential
        (fun () ->
          let t2 = Simkit.Engine.now engine in
          k (mib /. Float.max (t1 -. t0) 1e-9, mib /. Float.max (t2 -. t1) 1e-9)))

let fig8_file ~strategy () =
  let scenario =
    Scenario.create ~vm_count:1 ~vm_mem_bytes:(Simkit.Units.gib 11)
      ~workload:Scenario.Ssh ()
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let vm = List.hd (Scenario.vms scenario) in
  let result = ref None in
  timed_file_reads scenario vm (fun (b1, b2) ->
      strategy_task strategy scenario (fun () ->
          (* After a cold reboot the kernel (and its cache) is new; the
             file must be re-created on the fresh filesystem, not
             re-warmed — that is the degradation being measured. *)
          let fs = Guest.Kernel.filesystem (Scenario.vm_kernel vm) in
          let file =
            match
              List.find_opt
                (fun f -> Guest.Filesystem.file_name f = "bigfile")
                (Guest.Filesystem.files fs)
            with
            | Some f -> f
            | None ->
              Guest.Filesystem.create_file fs ~name:"bigfile"
                ~bytes:(Simkit.Units.mib 512) ()
          in
          let mib =
            Simkit.Units.bytes_to_mib (Guest.Filesystem.file_bytes file)
          in
          let t0 = Simkit.Engine.now engine in
          Guest.Filesystem.read fs file ~access:Guest.Filesystem.Sequential
            (fun () ->
              let t1 = Simkit.Engine.now engine in
              Guest.Filesystem.read fs file
                ~access:Guest.Filesystem.Sequential (fun () ->
                  let t2 = Simkit.Engine.now engine in
                  result :=
                    Some
                      ( b1,
                        b2,
                        mib /. Float.max (t1 -. t0) 1e-9,
                        mib /. Float.max (t2 -. t1) 1e-9 )))));
  Simkit.Engine.run engine;
  match !result with
  | None -> failwith "fig8_file did not complete"
  | Some (first_before, second_before, first_after, second_after) ->
    {
      first_before;
      second_before;
      first_after;
      second_after;
      degradation = degradation_of ~before:first_before ~after:first_after;
    }

let fig8_web ~strategy () =
  let workload =
    Scenario.Web
      { file_count = 10_000; file_bytes = Simkit.Units.kib 512;
        warm_cache = true }
  in
  let scenario =
    Scenario.create ~vm_count:1 ~vm_mem_bytes:(Simkit.Units.gib 11) ~workload
      ()
  in
  let engine = Scenario.engine scenario in
  boot_testbed scenario;
  let vm = List.hd (Scenario.vms scenario) in
  let rng = Scenario.rng scenario in
  let request k =
    match Scenario.vm_httpd vm with
    | Some httpd -> Guest.Httpd.handle_request httpd ~rng k
    | None -> k false
  in
  let load = Netsim.Httperf.create engine ~connections:10 ~request () in
  Netsim.Httperf.start load;
  let window = 20.0 in
  let epoch = Simkit.Engine.now engine in
  let marks = ref [] in
  (* Two measurement windows before the reboot, then the reboot, then
     two windows after it. *)
  ignore
    (Simkit.Engine.schedule engine ~delay:(2.0 *. window) (fun () ->
         let now = Simkit.Engine.now engine in
         marks := [ ("b1", epoch, epoch +. window); ("b2", epoch +. window, now) ];
         strategy_task strategy scenario (fun () ->
             let up = Simkit.Engine.now engine in
             marks :=
               !marks
               @ [ ("a1", up, up +. window); ("a2", up +. window, up +. (2.0 *. window)) ];
             ignore
               (Simkit.Engine.schedule engine ~delay:(2.0 *. window)
                  (fun () -> Netsim.Httperf.stop load)))));
  Simkit.Engine.run ~until:(epoch +. 1200.0) engine;
  let rate tag =
    match List.find_opt (fun (l, _, _) -> l = tag) !marks with
    | Some (_, lo, hi) -> Netsim.Httperf.throughput_between load ~lo ~hi
    | None -> failwith "fig8_web window missing"
  in
  let first_before = rate "b1"
  and second_before = rate "b2"
  and first_after = rate "a1"
  and second_after = rate "a2" in
  {
    first_before;
    second_before;
    first_after;
    second_after;
    degradation = degradation_of ~before:second_before ~after:first_after;
  }

(* --- Section 5.6 -------------------------------------------------------- *)

let section_5_6_fits ?(vm_counts = [ 0; 2; 4; 6; 8; 11 ]) () =
  let warm_points =
    List.map
      (fun n ->
        let r =
          run_reboot ~strategy:Strategy.Warm ~vm_count:n
            ~vm_mem_bytes:(Simkit.Units.gib 1) ()
        in
        (n, r))
      vm_counts
  in
  let cold_points =
    List.filter_map
      (fun n ->
        if n = 0 then None
        else
          Some
            ( n,
              run_reboot ~strategy:Strategy.Cold ~vm_count:n
                ~vm_mem_bytes:(Simkit.Units.gib 1) () ))
      vm_counts
  in
  let reboot_vmm =
    List.map (fun (n, r) -> (float_of_int n, r.vmm_reboot_s)) warm_points
  in
  let resume =
    List.map
      (fun (n, r) ->
        ( float_of_int n,
          r.post_task_s +. span_duration r.spans "on-memory suspend" ))
      warm_points
  in
  let reboot_os =
    List.map
      (fun (n, r) -> (float_of_int n, r.pre_task_s +. r.post_task_s))
      cold_points
  in
  let boot =
    List.map (fun (n, r) -> (float_of_int n, r.post_task_s)) cold_points
  in
  let reset_hw =
    let times = quick_reload_effect () in
    times.hardware_reset_s -. times.quick_reload_s
  in
  Downtime_model.fit ~reboot_vmm ~resume ~reboot_os ~boot ~reset_hw
