type fits = {
  reboot_vmm : Simkit.Stat.linear;
  resume : Simkit.Stat.linear;
  reboot_os : Simkit.Stat.linear;
  boot : Simkit.Stat.linear;
  reset_hw : float;
}

let line slope intercept = { Simkit.Stat.slope; intercept; r2 = 1.0 }

let paper_fits =
  {
    reboot_vmm = line (-0.55) 43.0;
    resume = line 0.43 (-0.07);
    reboot_os = line 3.8 13.0;
    boot = line 3.4 2.8;
    reset_hw = 47.0;
  }

let eval = Simkit.Stat.eval_linear

let d_warm f ~n =
  let x = float_of_int n in
  eval f.reboot_vmm x +. eval f.resume x

let d_cold f ~n ~alpha =
  if alpha <= 0.0 || alpha > 1.0 then
    invalid_arg "Downtime_model.d_cold: alpha outside (0, 1]";
  let x = float_of_int n in
  f.reset_hw +. eval f.reboot_vmm 0.0 +. eval f.reboot_os x
  -. (eval f.reboot_os 1.0 *. alpha)

let reduction f ~n ~alpha = d_cold f ~n ~alpha -. d_warm f ~n

type reduction_formula = {
  n_slope : float;
  constant : float;
  alpha_coefficient : float;
}

let reduction_as_formula f =
  {
    n_slope =
      f.reboot_os.Simkit.Stat.slope -. f.reboot_vmm.Simkit.Stat.slope
      -. f.resume.Simkit.Stat.slope;
    constant =
      f.reset_hw +. f.reboot_os.Simkit.Stat.intercept
      -. f.resume.Simkit.Stat.intercept;
    alpha_coefficient = -.eval f.reboot_os 1.0;
  }

let always_positive f ~max_n =
  let worst_alpha = 1.0 in
  let rec go n =
    if n > max_n then true
    else if reduction f ~n ~alpha:worst_alpha <= 0.0 then false
    else go (n + 1)
  in
  go 1

let fit ~reboot_vmm ~resume ~reboot_os ~boot ~reset_hw =
  {
    reboot_vmm = Simkit.Stat.linear_fit reboot_vmm;
    resume = Simkit.Stat.linear_fit resume;
    reboot_os = Simkit.Stat.linear_fit reboot_os;
    boot = Simkit.Stat.linear_fit boot;
    reset_hw;
  }

let pp ppf f =
  let l = Simkit.Stat.pp_linear ~var:"n" in
  Format.fprintf ppf
    "reboot_vmm(n) = %a@.resume(n)     = %a@.reboot_os(n)  = %a@.boot(n)       \
     = %a@.reset_hw      = %.1f@."
    l f.reboot_vmm l f.resume l f.reboot_os l f.boot f.reset_hw;
  let r = reduction_as_formula f in
  Format.fprintf ppf "r(n)          = %.1fn + %.0f %+.0f*alpha@." r.n_slope
    r.constant r.alpha_coefficient
