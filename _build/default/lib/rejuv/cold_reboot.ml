module Vmm = Xenvmm.Vmm

let execute scenario k =
  let vmm = Scenario.vmm scenario in
  let cal = Scenario.calibration scenario in
  let engine = Scenario.engine scenario in
  let tr = Scenario.trace scenario in
  Simkit.Trace.instant tr "reboot command (cold)";
  Simkit.Process.delay engine cal.Calibration.xend_stop_delay_s (fun () ->
      let pre = Simkit.Trace.begin_span tr "pre-reboot tasks" in
      (* Orderly shutdown of every guest OS, in parallel. *)
      Simkit.Process.par
        (List.map
           (fun v -> Guest.Kernel.shutdown (Scenario.vm_kernel v))
           (Scenario.vms scenario))
        (fun () ->
          (* The halted domains are then torn down by the toolstack. *)
          Simkit.Process.par
            (List.map
               (fun v k -> Vmm.destroy_domain vmm (Scenario.vm_domain v) k)
               (Scenario.vms scenario))
            (fun () ->
              Simkit.Trace.end_span tr pre;
              let reboot = Simkit.Trace.begin_span tr "vmm reboot" in
              Vmm.shutdown_dom0 vmm (fun () ->
                  Vmm.shutdown_vmm vmm (fun () ->
                      Vmm.hardware_reset vmm (fun () ->
                          Vmm.boot_dom0 vmm (fun () ->
                              Simkit.Trace.end_span tr reboot;
                              let post =
                                Simkit.Trace.begin_span tr "post-reboot tasks"
                              in
                              Simkit.Process.par
                                (List.map
                                   (fun v -> Scenario.provision_vm scenario v)
                                   (Scenario.vms scenario))
                                (fun () ->
                                  Simkit.Trace.end_span tr post;
                                  k ()))))))))
