type params = {
  m : int;
  p : float;
  warm_outage_s : float;
  cold_outage_s : float;
  cold_delta : float;
  cold_degraded_s : float;
  migration_degradation : float;
  migration_duration_s : float;
}

let paper_params ?(m = 4) ?(p = 1.0) () =
  {
    m;
    p;
    warm_outage_s = 42.0;
    cold_outage_s = 241.0;
    cold_delta = 0.69;
    cold_degraded_s = 60.0;
    migration_degradation = 0.12;
    (* 11 VMs x 1 GiB at the ~72 s / 800 MB rate from Clark et al. *)
    migration_duration_s = 17.0 *. 60.0;
  }

type timeline = (float * float) list

let validate p =
  if p.m < 1 then invalid_arg "Cluster: m < 1";
  if p.p <= 0.0 then invalid_arg "Cluster: p <= 0"

(* Keep only the last breakpoint per timestamp, then merge consecutive
   breakpoints with equal value. *)
let normalize tl =
  let sorted = List.stable_sort (fun (a, _) (b, _) -> Float.compare a b) tl in
  let rec last_per_time = function
    | (t1, _) :: ((t2, _) :: _ as rest) when t1 = t2 -> last_per_time rest
    | x :: rest -> x :: last_per_time rest
    | [] -> []
  in
  let rec merge acc = function
    | [] -> List.rev acc
    | (t, v) :: rest -> (
      match acc with
      | (_, pv) :: _ when pv = v -> merge acc rest
      | _ -> merge ((t, v) :: acc) rest)
  in
  merge [] (last_per_time sorted)

let throughput_at tl time =
  List.fold_left (fun acc (t, v) -> if t <= time then v else acc) 0.0 tl

let fm p = float_of_int p.m

let warm_timeline p ~reboot_at =
  validate p;
  let full = fm p *. p.p in
  normalize
    [
      (0.0, full);
      (reboot_at, (fm p -. 1.0) *. p.p);
      (reboot_at +. p.warm_outage_s, full);
    ]

let cold_timeline p ~reboot_at =
  validate p;
  let full = fm p *. p.p in
  normalize
    [
      (0.0, full);
      (reboot_at, (fm p -. 1.0) *. p.p);
      (reboot_at +. p.cold_outage_s, (fm p -. p.cold_delta) *. p.p);
      (reboot_at +. p.cold_outage_s +. p.cold_degraded_s, full);
    ]

let migration_timeline p ~migrate_at =
  validate p;
  if p.m < 2 then invalid_arg "Cluster.migration_timeline: needs m >= 2";
  (* One host is always reserved as the migration destination. *)
  let baseline = (fm p -. 1.0) *. p.p in
  normalize
    [
      (0.0, baseline);
      (migrate_at, (fm p -. 1.0 -. p.migration_degradation) *. p.p);
      (migrate_at +. p.migration_duration_s, baseline);
    ]

let lost_capacity p tl ~horizon_s =
  validate p;
  if horizon_s <= 0.0 then invalid_arg "Cluster.lost_capacity: horizon";
  let ideal = fm p *. p.p in
  let rec go acc = function
    | [] -> acc
    | (t, v) :: rest ->
      let t_end =
        match rest with (t2, _) :: _ -> Float.min t2 horizon_s | [] -> horizon_s
      in
      if t >= horizon_s then acc
      else go (acc +. ((ideal -. v) *. (t_end -. t))) rest
  in
  go 0.0 tl

let rolling_rejuvenation p ~strategy ~start_at ~gap_s =
  validate p;
  let outage, degraded_tail =
    match strategy with
    | Strategy.Warm -> (p.warm_outage_s, None)
    | Strategy.Saved -> (p.cold_outage_s *. 1.8, None)
    | Strategy.Cold -> (p.cold_outage_s, Some (p.cold_delta, p.cold_degraded_s))
  in
  (* Capacity-delta events per host, summed by a sweep so overlapping
     windows (gap shorter than the outage) compose correctly. *)
  let events = ref [] in
  let push t dv = events := (t, dv) :: !events in
  for i = 0 to p.m - 1 do
    let t0 = start_at +. (float_of_int i *. gap_s) in
    push t0 (-.p.p);
    match degraded_tail with
    | None -> push (t0 +. outage) p.p
    | Some (delta, dur) ->
      push (t0 +. outage) ((1.0 -. delta) *. p.p);
      push (t0 +. outage +. dur) (delta *. p.p)
  done;
  let sorted =
    List.stable_sort (fun (a, _) (b, _) -> Float.compare a b)
      (List.rev !events)
  in
  let full = fm p *. p.p in
  let _, breakpoints =
    List.fold_left
      (fun (cap, acc) (t, dv) -> (cap +. dv, (t, cap +. dv) :: acc))
      (full, [ (0.0, full) ])
      sorted
  in
  normalize (List.rev breakpoints)
