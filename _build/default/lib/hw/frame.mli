(** Machine-frame allocator.

    Machine memory is a set of 4 KiB machine page frames, numbered by
    machine frame number (MFN) from 0, exactly as in Xen. The allocator
    hands out extents (contiguous MFN ranges) and supports reserving
    specific ranges — the operation at the heart of quick reload, where
    the freshly booted VMM must re-reserve the P2M-mapping table and all
    frozen domain frames before touching anything else. *)

type t

type extent = { first : int; count : int }
(** [count] machine frames starting at MFN [first]. *)

val pp_extent : Format.formatter -> extent -> unit

val extent_bytes : extent -> int
val extents_bytes : extent list -> int
val extents_frames : extent list -> int

val create : total_frames:int -> t
(** Allocator over MFNs [0 .. total_frames - 1], all initially free. *)

val of_bytes : total_bytes:int -> t
(** Convenience: [total_bytes / 4 KiB] frames. *)

val total_frames : t -> int
val free_frames : t -> int
val used_frames : t -> int
val free_bytes : t -> int
val used_bytes : t -> int

val alloc : t -> frames:int -> extent list option
(** Allocate [frames] machine frames, lowest-addressed extents first.
    [None] (and no state change) when not enough memory is free. *)

val alloc_bytes : t -> bytes:int -> extent list option
(** [alloc] of enough frames to cover [bytes]. *)

val free : t -> extent list -> unit
(** Return extents to the free pool. Raises [Invalid_argument] if any
    frame is already free or out of range (double free / corruption). *)

val reserve : t -> extent -> (unit, string) result
(** Claim a specific MFN range, e.g. when re-adopting preserved memory
    after a quick reload. Fails when any frame of the range is not
    currently free. *)

val is_free : t -> mfn:int -> bool
(** Whether a single frame is currently free. *)

val check_invariants : t -> (unit, string) result
(** Internal consistency: extents sorted, non-overlapping, coalesced,
    within range, and the free count matches. For tests. *)
