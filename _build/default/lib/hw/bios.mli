(** BIOS / hardware-reset timing model.

    A hardware reset runs power-on self-test: a memory check proportional
    to installed RAM plus SCSI controller initialization. With the
    paper's 12 GB machine this totals the 47 seconds reported as
    [reset_hw] in Section 5.6. Quick reload bypasses all of it. *)

type t = {
  base_s : float;  (** firmware init before POST proper *)
  memory_check_s_per_gib : float;
  scsi_init_s : float;
}

val default : t
(** Calibrated to [post_time ~mem_bytes:12GiB = 47 s]. *)

val post_time : t -> mem_bytes:int -> float

val v : base_s:float -> memory_check_s_per_gib:float -> scsi_init_s:float -> t
