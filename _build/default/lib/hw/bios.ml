type t = {
  base_s : float;
  memory_check_s_per_gib : float;
  scsi_init_s : float;
}

let v ~base_s ~memory_check_s_per_gib ~scsi_init_s =
  if base_s < 0.0 || memory_check_s_per_gib < 0.0 || scsi_init_s < 0.0 then
    invalid_arg "Bios.v: negative component";
  { base_s; memory_check_s_per_gib; scsi_init_s }

(* 5 + 3*12 + 6 = 47 s on the 12 GiB testbed. *)
let default = v ~base_s:5.0 ~memory_check_s_per_gib:3.0 ~scsi_init_s:6.0

let post_time t ~mem_bytes =
  t.base_s
  +. (t.memory_check_s_per_gib *. Simkit.Units.bytes_to_gib mem_bytes)
  +. t.scsi_init_s
