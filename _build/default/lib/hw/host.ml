type t = {
  engine : Simkit.Engine.t;
  memory : Memory.t;
  disk : Disk.t;
  nic : Nic.t;
  bios : Bios.t;
  cpu : Simkit.Resource.t;
  trace : Simkit.Trace.t;
}

type config = {
  mem_bytes : int;
  scrub_seconds_per_gib : float;
  disk_read_mib_per_s : float;
  disk_write_mib_per_s : float;
  disk_seek_ms : float;
  disk_random_penalty : float;
  disk_capacity_bytes : int;
  nic_gbit_per_s : float;
  bios : Bios.t;
  cpu_capacity : float;
}

let default_config =
  {
    mem_bytes = Simkit.Units.gib 12;
    scrub_seconds_per_gib = 0.55;
    disk_read_mib_per_s = 88.0;
    disk_write_mib_per_s = 85.0;
    disk_seek_ms = 4.0;
    disk_random_penalty = 1.5;
    disk_capacity_bytes = 36_700_000_000;
    nic_gbit_per_s = 1.0;
    bios = Bios.default;
    cpu_capacity = 1.0;
  }

let create ?(config = default_config) engine =
  {
    engine;
    memory =
      Memory.create ~total_bytes:config.mem_bytes
        ~scrub_seconds_per_gib:config.scrub_seconds_per_gib;
    disk =
      Disk.create engine ~read_mib_per_s:config.disk_read_mib_per_s
        ~write_mib_per_s:config.disk_write_mib_per_s
        ~seek_ms:config.disk_seek_ms
        ~random_penalty:config.disk_random_penalty
        ~capacity_bytes:config.disk_capacity_bytes ();
    nic = Nic.create engine ~gbit_per_s:config.nic_gbit_per_s ();
    bios = config.bios;
    cpu = Simkit.Resource.create engine ~name:"cpu" ~capacity:config.cpu_capacity;
    trace = Simkit.Trace.create engine;
  }

let post_time (t : t) =
  Bios.post_time t.bios ~mem_bytes:(Memory.total_bytes t.memory)

let config_mem_bytes c = c.mem_bytes
