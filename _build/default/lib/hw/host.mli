(** An assembled physical host.

    Bundles the simulation engine with the machine's memory, disk, NIC,
    BIOS and a shared CPU-complex resource (used for contended boot /
    shutdown / service-start work), plus a trace sink. One [Host.t]
    corresponds to one server machine of the paper's testbed. *)

type t = {
  engine : Simkit.Engine.t;
  memory : Memory.t;
  disk : Disk.t;
  nic : Nic.t;
  bios : Bios.t;
  cpu : Simkit.Resource.t;
  trace : Simkit.Trace.t;
}

type config = {
  mem_bytes : int;
  scrub_seconds_per_gib : float;
  disk_read_mib_per_s : float;
  disk_write_mib_per_s : float;
  disk_seek_ms : float;
  disk_random_penalty : float;
  disk_capacity_bytes : int;
  nic_gbit_per_s : float;
  bios : Bios.t;
  cpu_capacity : float;
}

val default_config : config
(** The paper's testbed: 12 GiB RAM, 15 krpm SCSI disk at 88/85 MiB/s,
    gigabit Ethernet, 47 s POST, unit CPU capacity. *)

val create : ?config:config -> Simkit.Engine.t -> t

val post_time : t -> float
(** Duration of a hardware reset of this host. *)

val config_mem_bytes : config -> int
