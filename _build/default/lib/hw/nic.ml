type t = {
  nic_name : string;
  wire : Simkit.Resource.t;
  full_bytes_per_s : float;
  mutable degradation_factor : float;
}

let create engine ?(name = "eth0") ~gbit_per_s () =
  if gbit_per_s <= 0.0 then invalid_arg "Nic.create: non-positive bandwidth";
  let bytes_per_s = gbit_per_s *. 1e9 /. 8.0 in
  {
    nic_name = name;
    wire = Simkit.Resource.create engine ~name ~capacity:bytes_per_s;
    full_bytes_per_s = bytes_per_s;
    degradation_factor = 1.0;
  }

let name t = t.nic_name

let transfer t ~bytes k =
  if bytes < 0 then invalid_arg "Nic.transfer: negative size";
  ignore (Simkit.Resource.submit t.wire ~work:(float_of_int bytes) k)

let effective_bytes_per_s t = Simkit.Resource.capacity t.wire

let transfer_time t ~bytes = float_of_int bytes /. effective_bytes_per_s t

let set_degradation t ~factor =
  if factor <= 0.0 || factor > 1.0 then
    invalid_arg "Nic.set_degradation: factor must be in (0, 1]";
  t.degradation_factor <- factor;
  Simkit.Resource.set_capacity t.wire (t.full_bytes_per_s *. factor)

let clear_degradation t =
  t.degradation_factor <- 1.0;
  Simkit.Resource.set_capacity t.wire t.full_bytes_per_s

let degradation t = t.degradation_factor
