(** Machine memory with a scrub-time model.

    Wraps the {!Frame} allocator with the timing behaviour the paper's
    Section 5.6 exposes: when the VMM initializes it scrubs (zeroes) the
    memory it considers free, at a fixed rate per GiB. The quick reload
    mechanism skips frames reserved for frozen domains, which is exactly
    why the measured [reboot_vmm(n)] has a negative slope in [n]. *)

type t

val create :
  total_bytes:int -> scrub_seconds_per_gib:float -> t

val frames : t -> Frame.t
(** The underlying machine-frame allocator. *)

val total_bytes : t -> int
val free_bytes : t -> int
val used_bytes : t -> int

val scrub_time : t -> bytes:int -> float
(** Simulated time to scrub that many bytes. *)

val scrub_free_time : t -> float
(** Time to scrub everything currently free — the quick-reload init
    path, where allocated (preserved) frames are skipped. *)

val scrub_all_time : t -> float
(** Time to scrub the whole installed memory — the cold boot path. *)

val wipe : t -> unit
(** Model a hardware reset: every frame becomes free (all contents,
    including frozen domain images, are lost). *)
