(** Network interface model.

    A gigabit NIC as a shared-bandwidth resource. Exposes a degradation
    multiplier used to reproduce the transient network slowdown Xen
    shows after creating many domains at once (the 25-second artifact
    the paper reports after a warm reboot in Figure 7). *)

type t

val create :
  Simkit.Engine.t -> ?name:string -> gbit_per_s:float -> unit -> t

val name : t -> string

val transfer : t -> bytes:int -> (unit -> unit) -> unit
(** Send [bytes]; continuation fires when the wire time has elapsed.
    Concurrent transfers share the bandwidth. *)

val transfer_time : t -> bytes:int -> float
(** Uncontended wire time. *)

val set_degradation : t -> factor:float -> unit
(** Scale effective bandwidth by [factor] (0 < factor <= 1). *)

val clear_degradation : t -> unit

val degradation : t -> float

val effective_bytes_per_s : t -> float
