lib/hw/nic.ml: Simkit
