lib/hw/memory.mli: Frame
