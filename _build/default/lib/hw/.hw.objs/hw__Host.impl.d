lib/hw/host.ml: Bios Disk Memory Nic Simkit
