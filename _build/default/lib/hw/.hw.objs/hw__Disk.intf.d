lib/hw/disk.mli: Simkit
