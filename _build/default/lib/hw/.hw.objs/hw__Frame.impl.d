lib/hw/frame.ml: Format List Printf Simkit
