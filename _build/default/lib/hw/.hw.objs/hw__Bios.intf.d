lib/hw/bios.mli:
