lib/hw/bios.ml: Simkit
