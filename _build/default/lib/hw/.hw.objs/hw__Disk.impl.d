lib/hw/disk.ml: Simkit
