lib/hw/memory.ml: Frame Simkit
