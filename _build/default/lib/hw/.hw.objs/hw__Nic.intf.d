lib/hw/nic.mli: Simkit
