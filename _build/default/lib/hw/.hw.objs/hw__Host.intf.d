lib/hw/host.mli: Bios Disk Memory Nic Simkit
