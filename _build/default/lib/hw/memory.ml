type t = {
  total : int;
  scrub_s_per_gib : float;
  mutable allocator : Frame.t;
}

let create ~total_bytes ~scrub_seconds_per_gib =
  if scrub_seconds_per_gib < 0.0 then
    invalid_arg "Memory.create: negative scrub rate";
  {
    total = total_bytes;
    scrub_s_per_gib = scrub_seconds_per_gib;
    allocator = Frame.of_bytes ~total_bytes;
  }

let frames t = t.allocator
let total_bytes t = t.total
let free_bytes t = Frame.free_bytes t.allocator
let used_bytes t = Frame.used_bytes t.allocator

let scrub_time t ~bytes =
  Simkit.Units.bytes_to_gib bytes *. t.scrub_s_per_gib

let scrub_free_time t = scrub_time t ~bytes:(free_bytes t)
let scrub_all_time t = scrub_time t ~bytes:t.total

let wipe t = t.allocator <- Frame.of_bytes ~total_bytes:t.total
