(** Software-aging injection and observation.

    Models the concrete aging causes the paper cites for Xen 3.0:

    - heap lost whenever a VM is rebooted (changeset 9392),
    - heap lost on sporadic error paths (changeset 11752),
    - xenstored leaking per transaction (changeset 8640).

    Also provides the observer side: a heap-usage history and a simple
    linear predictor of time-to-exhaustion, which the rejuvenation
    policy can use to schedule a warm-VM reboot proactively. *)

type config = {
  leak_per_domain_destroy_bytes : int;
  leak_per_error_path_bytes : int;
  error_path_mean_interval_s : float;
      (** Exponential inter-arrival of error-path executions; [infinity]
          disables them. *)
  xenstore_leak_per_txn_bytes : int;
}

val no_aging : config

val xen_3_0_bugs : config
(** Plausible magnitudes for the cited bugs: 64 KiB lost per domain
    destroy, 16 KiB per error path (mean every 10 min), 4 KiB per
    xenstore transaction. *)

type t

val attach : ?config:config -> Vmm.t -> t
(** Install the injection hooks on a VMM and start sampling. The
    injected state is naturally cleared by any VMM reboot (the heap is
    rebuilt) — that is what rejuvenation is. *)

val config : t -> config

val sample : t -> unit
(** Record a (now, heap used bytes) point. Samples are also taken
    automatically on each injected leak. *)

val heap_history : t -> (float * int) list

val leaked_since_boot : t -> int
(** Heap bytes the current VMM generation has leaked so far. *)

val predict_exhaustion : t -> float option
(** Estimated absolute time at which the VMM heap runs out, from a
    linear fit over the current generation's history. [None] while the
    trend is flat or there are too few samples. *)

val stop : t -> unit
(** Stop the periodic error-path injector. *)
