(** Event channels: the VMM's asynchronous notification primitive.

    Guests and the VMM communicate through numbered ports. The status of
    a domain's event channels is part of the execution state that the
    on-memory suspend saves (16 KiB per domain) and the resume restores;
    after a warm reboot, the guest kernel's resume handler re-binds its
    channels to the new VMM instance. *)

type t

type port = int

type status = Unbound | Bound | Closed

val create : unit -> t

val alloc_unbound : t -> domid:int -> port
(** Allocate a fresh port owned by a domain. *)

val bind : t -> port -> handler:(unit -> unit) -> unit
(** Raises [Invalid_argument] on closed or unknown ports. *)

val notify : t -> Simkit.Engine.t -> port -> bool
(** Deliver an event: schedules the bound handler on the next engine
    step. Returns [false] (and delivers nothing) when the port is not
    bound. *)

val close : t -> port -> unit

val status : t -> port -> status
(** Unknown ports read as [Closed]. *)

val ports_of : t -> domid:int -> port list

val close_all_of : t -> domid:int -> unit

val snapshot_of : t -> domid:int -> (port * status) list
(** The per-domain channel state saved in the execution-state area. *)

val restore_snapshot : t -> domid:int -> (port * status) list -> unit
(** Recreate a domain's ports (as unbound, awaiting the guest resume
    handler's re-bind) in a fresh VMM instance. *)
