type params = { weight : int; cap_percent : int option }

let default_params = { weight = 256; cap_percent = None }

type job = {
  jdomid : Domain.id;
  mutable remaining : float;
  on_done : unit -> unit;
}

type t = {
  engine : Simkit.Engine.t;
  cpus : int;
  capacity : float; (* CPU-seconds per second *)
  table : (Domain.id, params) Hashtbl.t;
  mutable jobs : job list;
  mutable last_settle : float;
  mutable pending : Simkit.Engine.handle option;
  mutable delivered : float;
  mutable busy : float;
}

let completion_epsilon = 1e-9

let create engine ?(physical_cpus = 4) () =
  if physical_cpus <= 0 then invalid_arg "Scheduler.create: cpus <= 0";
  {
    engine;
    cpus = physical_cpus;
    capacity = float_of_int physical_cpus;
    table = Hashtbl.create 16;
    jobs = [];
    last_settle = Simkit.Engine.now engine;
    pending = None;
    delivered = 0.0;
    busy = 0.0;
  }

let physical_cpus t = t.cpus

let set_params t ~domid p =
  if p.weight <= 0 then invalid_arg "Scheduler.set_params: weight <= 0";
  (match p.cap_percent with
  | Some c when c <= 0 -> invalid_arg "Scheduler.set_params: cap <= 0"
  | _ -> ());
  Hashtbl.replace t.table domid p

let params_of t ~domid =
  Option.value (Hashtbl.find_opt t.table domid) ~default:default_params

let remove_domain t ~domid = Hashtbl.remove t.table domid

let active_work t = List.length t.jobs

let cap_rate p =
  match p.cap_percent with
  | None -> infinity
  | Some c -> float_of_int c /. 100.0

(* Water-filling rate assignment: every active domain tentatively gets
   capacity proportional to its weight; domains whose cap is below their
   share are pinned at the cap and the surplus re-flows to the rest. *)
let domain_rates t =
  let active_domains =
    List.sort_uniq compare (List.map (fun j -> j.jdomid) t.jobs)
  in
  let rates = Hashtbl.create 8 in
  let rec fill pool capacity =
    if pool = [] then ()
    else begin
      let total_weight =
        List.fold_left
          (fun acc d -> acc + (params_of t ~domid:d).weight)
          0 pool
      in
      let capped, uncapped =
        List.partition
          (fun d ->
            let p = params_of t ~domid:d in
            let tentative =
              capacity *. float_of_int p.weight /. float_of_int total_weight
            in
            cap_rate p < tentative)
          pool
      in
      if capped = [] then
        List.iter
          (fun d ->
            let p = params_of t ~domid:d in
            Hashtbl.replace rates d
              (capacity *. float_of_int p.weight
              /. float_of_int total_weight))
          pool
      else begin
        let used =
          List.fold_left
            (fun acc d ->
              let r = cap_rate (params_of t ~domid:d) in
              Hashtbl.replace rates d r;
              acc +. r)
            0.0 capped
        in
        fill uncapped (Float.max 0.0 (capacity -. used))
      end
    end
  in
  fill active_domains t.capacity;
  rates

(* Rate of one job: its domain's rate split evenly over the domain's
   jobs. *)
let job_rates t =
  let per_domain = domain_rates t in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun j ->
      let c = Option.value (Hashtbl.find_opt counts j.jdomid) ~default:0 in
      Hashtbl.replace counts j.jdomid (c + 1))
    t.jobs;
  fun j ->
    let domain_rate =
      Option.value (Hashtbl.find_opt per_domain j.jdomid) ~default:0.0
    in
    domain_rate /. float_of_int (Hashtbl.find counts j.jdomid)

let settle t =
  let now = Simkit.Engine.now t.engine in
  let elapsed = now -. t.last_settle in
  if elapsed > 0.0 && t.jobs <> [] then begin
    let rate_of = job_rates t in
    List.iter
      (fun j ->
        let progressed = elapsed *. rate_of j in
        j.remaining <- j.remaining -. progressed;
        t.delivered <- t.delivered +. progressed)
      t.jobs;
    t.busy <- t.busy +. elapsed
  end;
  t.last_settle <- now

let cancel_pending t =
  match t.pending with
  | None -> ()
  | Some h ->
    Simkit.Engine.cancel t.engine h;
    t.pending <- None

let rec reschedule t =
  cancel_pending t;
  match t.jobs with
  | [] -> ()
  | jobs ->
    let rate_of = job_rates t in
    let dt =
      List.fold_left
        (fun acc j ->
          let r = rate_of j in
          if r <= 0.0 then acc else Float.min acc (j.remaining /. r))
        infinity jobs
    in
    if dt < infinity then begin
      let handle =
        Simkit.Engine.schedule t.engine ~delay:(Float.max dt 0.0) (fun () ->
            on_tick t)
      in
      t.pending <- Some handle
    end

and on_tick t =
  t.pending <- None;
  settle t;
  let rate_of = job_rates t in
  let nearly_done j =
    j.remaining <= completion_epsilon
    ||
    let r = rate_of j in
    r > 0.0 && j.remaining /. r <= completion_epsilon
  in
  let finished, active = List.partition nearly_done t.jobs in
  t.jobs <- active;
  reschedule t;
  List.iter (fun j -> j.on_done ()) finished

let run_work t ~domid ~work on_done =
  if work < 0.0 then invalid_arg "Scheduler.run_work: negative work";
  if work <= 0.0 then
    ignore (Simkit.Engine.schedule t.engine ~delay:0.0 on_done)
  else begin
    settle t;
    t.jobs <- { jdomid = domid; remaining = work; on_done } :: t.jobs;
    reschedule t
  end

let utilization t =
  if t.busy <= 0.0 then 1.0 else t.delivered /. (t.capacity *. t.busy)
