lib/xenvmm/xenstore.mli:
