lib/xenvmm/image.mli: Format
