lib/xenvmm/timing.mli:
