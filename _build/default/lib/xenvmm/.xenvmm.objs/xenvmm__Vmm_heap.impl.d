lib/xenvmm/vmm_heap.ml: Hashtbl List Option Printf Stdlib String
