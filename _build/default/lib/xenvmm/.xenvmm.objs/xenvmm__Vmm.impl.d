lib/xenvmm/vmm.ml: Domain Event_channel Format Grant_table Hashtbl Hw Hypercall Image List Logs Option P2m Printf Scheduler Simkit String Timing Vmm_heap Xenstore
