lib/xenvmm/xenstore.ml: Float Hashtbl List String
