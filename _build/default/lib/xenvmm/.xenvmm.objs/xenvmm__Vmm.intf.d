lib/xenvmm/vmm.mli: Domain Event_channel Grant_table Hw Hypercall Image Scheduler Simkit Timing Vmm_heap Xenstore
