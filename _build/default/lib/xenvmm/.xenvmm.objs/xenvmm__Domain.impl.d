lib/xenvmm/domain.ml: Event_channel Format Hw List P2m Printf Simkit String
