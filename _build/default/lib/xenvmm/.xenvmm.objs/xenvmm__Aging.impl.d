lib/xenvmm/aging.ml: List Simkit Vmm Vmm_heap
