lib/xenvmm/aging.mli: Vmm
