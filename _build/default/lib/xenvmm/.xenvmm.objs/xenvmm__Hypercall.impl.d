lib/xenvmm/hypercall.ml: Domain Format
