lib/xenvmm/grant_table.ml: Domain Hashtbl List Printf
