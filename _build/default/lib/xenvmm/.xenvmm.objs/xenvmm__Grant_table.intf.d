lib/xenvmm/grant_table.mli: Domain
