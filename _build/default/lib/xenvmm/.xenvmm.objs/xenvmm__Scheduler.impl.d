lib/xenvmm/scheduler.ml: Domain Float Hashtbl List Option Simkit
