lib/xenvmm/event_channel.mli: Simkit
