lib/xenvmm/event_channel.ml: Hashtbl List Simkit
