lib/xenvmm/vmm_heap.mli:
