lib/xenvmm/scheduler.mli: Domain Simkit
