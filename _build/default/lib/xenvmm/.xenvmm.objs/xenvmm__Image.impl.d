lib/xenvmm/image.ml: Format Simkit
