lib/xenvmm/hypercall.mli: Domain Format
