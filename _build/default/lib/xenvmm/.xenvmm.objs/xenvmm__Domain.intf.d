lib/xenvmm/domain.mli: Event_channel Format Hw P2m Simkit
