lib/xenvmm/timing.ml: Simkit
