lib/xenvmm/p2m.ml: Hw Int List Map Simkit Stdlib
