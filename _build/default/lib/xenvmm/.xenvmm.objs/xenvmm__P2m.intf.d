lib/xenvmm/p2m.mli: Hw
