(** Credit-scheduler model: weighted proportional sharing of the
    physical CPUs among domains, with optional caps.

    Xen's credit scheduler gives each domain CPU time proportional to
    its weight (default 256), optionally capped at a fixed fraction of
    one CPU. The model exposes the same semantics over the simulation's
    processor-sharing machinery: work submitted for a domain progresses
    at [capacity * weight_share], further limited by the domain's cap.

    This is the substrate behind "shutting down and booting multiple
    operating systems in parallel cause resource contention among
    them" — with non-default weights, that contention becomes
    controllable. *)

type t

type params = {
  weight : int;  (** relative share; Xen default 256 *)
  cap_percent : int option;
      (** hard ceiling as percent of one physical CPU; [None] = no cap *)
}

val default_params : params

val create : Simkit.Engine.t -> ?physical_cpus:int -> unit -> t
(** A scheduler over [physical_cpus] (default 4 — the paper's two
    dual-core Opterons). Total capacity is [physical_cpus] CPU-seconds
    per second. *)

val physical_cpus : t -> int

val set_params : t -> domid:Domain.id -> params -> unit
(** Configure a domain's weight/cap (like [xm sched-credit]). Takes
    effect for work submitted afterwards. *)

val params_of : t -> domid:Domain.id -> params

val run_work :
  t -> domid:Domain.id -> work:float -> (unit -> unit) -> unit
(** Execute [work] CPU-seconds on behalf of a domain; the continuation
    fires when it completes under the current contention. A capped
    domain progresses at most at [cap] even on an idle host. *)

val remove_domain : t -> domid:Domain.id -> unit
(** Drop a domain's parameters (its in-flight work still completes). *)

val active_work : t -> int
(** Number of in-flight work items. *)

val utilization : t -> float
(** Fraction of total CPU-time delivered so far vs elapsed busy time
    (1.0 = fully busy whenever any work was pending). *)
