(** Model of xenstored, the store daemon in the privileged domain.

    A hierarchical key-value store used by the toolstack for domain
    bookkeeping. The real daemon leaked memory per transaction (Xen
    changeset 8640) and is not restartable — recovering from its aging
    requires rebooting domain 0 (and hence, without warm-VM reboot, the
    whole VMM). The model tracks per-transaction memory growth and an
    I/O slowdown factor once memory pressure builds. *)

type t

val create : ?leak_per_transaction_bytes:int -> ?memory_budget_bytes:int -> unit -> t
(** Defaults: no leak, 64 MiB budget (the paper notes privileged VMs get
    modest memory). *)

val write : t -> path:string -> string -> unit
val read : t -> path:string -> string option
val rm : t -> path:string -> unit
(** Remove a path and everything below it. *)

val directory : t -> path:string -> string list
(** Immediate child names under [path], sorted. *)

val watch : t -> path:string -> (string -> unit) -> unit
(** [watch t ~path f] calls [f changed_path] whenever a path with prefix
    [path] is written or removed. *)

val transactions : t -> int
val entries : t -> int

val memory_bytes : t -> int
(** Store contents + accumulated leaks. *)

val io_slowdown : t -> float
(** >= 1; multiplier on privileged-VM I/O latency as memory pressure
    approaches the budget ("If I/O processing in the privileged VM slows
    down due to out of memory, the performance in the other VMs is also
    degraded"). *)

val restartable : bool
(** [false] — restoring from xenstored leaks requires rebooting dom0. *)
