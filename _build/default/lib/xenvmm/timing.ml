type t = {
  vmm_load_s : float;
  vmm_shutdown_s : float;
  dom0_boot_s : float;
  dom0_shutdown_s : float;
  domain_create_s : float;
  domain_destroy_s : float;
  suspend_fixed_s : float;
  suspend_per_gib_s : float;
  resume_fixed_s : float;
  resume_per_gib_s : float;
  save_handler_s : float;
  restore_fixed_s : float;
  exec_state_bytes : int;
}

let default =
  {
    vmm_load_s = 4.7;
    vmm_shutdown_s = 0.5;
    dom0_boot_s = 32.0;
    dom0_shutdown_s = 14.0;
    domain_create_s = 0.1;
    domain_destroy_s = 0.1;
    suspend_fixed_s = 0.0033;
    suspend_per_gib_s = 0.0067;
    resume_fixed_s = 0.1;
    resume_per_gib_s = 0.05;
    save_handler_s = 0.5;
    restore_fixed_s = 1.7;
    exec_state_bytes = 16 * 1024;
  }

let suspend_walk_time t ~mem_bytes =
  t.suspend_per_gib_s *. Simkit.Units.bytes_to_gib mem_bytes

let resume_time t ~mem_bytes =
  t.resume_fixed_s +. (t.resume_per_gib_s *. Simkit.Units.bytes_to_gib mem_bytes)
