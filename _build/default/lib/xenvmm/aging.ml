type config = {
  leak_per_domain_destroy_bytes : int;
  leak_per_error_path_bytes : int;
  error_path_mean_interval_s : float;
  xenstore_leak_per_txn_bytes : int;
}

let no_aging =
  {
    leak_per_domain_destroy_bytes = 0;
    leak_per_error_path_bytes = 0;
    error_path_mean_interval_s = infinity;
    xenstore_leak_per_txn_bytes = 0;
  }

let xen_3_0_bugs =
  {
    leak_per_domain_destroy_bytes = 64 * 1024;
    leak_per_error_path_bytes = 16 * 1024;
    error_path_mean_interval_s = 600.0;
    xenstore_leak_per_txn_bytes = 4096;
  }

type t = {
  vmm : Vmm.t;
  cfg : config;
  rng : Simkit.Rng.t;
  mutable history : (float * int) list; (* newest first; current gen *)
  mutable stopped : bool;
}

let now t = Simkit.Engine.now (Vmm.engine t.vmm)

let sample t =
  t.history <- (now t, Vmm_heap.used_bytes (Vmm.heap t.vmm)) :: t.history

let rec schedule_error_path t =
  if (not t.stopped) && t.cfg.error_path_mean_interval_s < infinity then begin
    let delay =
      Simkit.Rng.exponential t.rng ~mean:t.cfg.error_path_mean_interval_s
    in
    ignore
      (Simkit.Engine.schedule (Vmm.engine t.vmm) ~delay (fun () ->
           if not t.stopped then begin
             if Vmm.is_running t.vmm then begin
               Vmm_heap.leak (Vmm.heap t.vmm)
                 ~bytes:t.cfg.leak_per_error_path_bytes;
               sample t
             end;
             schedule_error_path t
           end))
  end

let attach ?(config = xen_3_0_bugs) vmm =
  let t =
    {
      vmm;
      cfg = config;
      rng = Simkit.Rng.split (Simkit.Engine.rng (Vmm.engine vmm));
      history = [];
      stopped = false;
    }
  in
  Vmm.set_leak_per_domain_destroy vmm
    ~bytes:config.leak_per_domain_destroy_bytes;
  Vmm.set_xenstore_leak_per_txn vmm ~bytes:config.xenstore_leak_per_txn_bytes;
  Vmm.on_event vmm (function
    | Vmm.Domain_destroyed _ -> sample t
    | Vmm.Booted _ ->
      (* New generation: fresh heap, fresh trend. *)
      t.history <- [];
      sample t
    | _ -> ());
  schedule_error_path t;
  t

let config t = t.cfg

let heap_history t = List.rev t.history

let leaked_since_boot t = Vmm_heap.leaked_bytes (Vmm.heap t.vmm)

let predict_exhaustion t =
  let points =
    List.rev_map (fun (time, used) -> (time, float_of_int used)) t.history
  in
  if List.length points < 3 then None
  else
    let fit = Simkit.Stat.linear_fit points in
    if fit.Simkit.Stat.slope <= 0.0 then None
    else
      let capacity =
        float_of_int (Vmm_heap.capacity_bytes (Vmm.heap t.vmm))
      in
      Some ((capacity -. fit.Simkit.Stat.intercept) /. fit.Simkit.Stat.slope)

let stop t = t.stopped <- true
