(** The executable image that the xexec hypercall stages for a quick
    reload: "a VMM, a kernel for domain 0, and an initial RAM disk for
    domain 0" (Section 4.3).

    The image is read from dom0's filesystem into machine frames that
    the reloading VMM must treat as preserved (it copies the image to
    the boot address before jumping to it). *)

type t = {
  vmm_bytes : int;
  dom0_kernel_bytes : int;
  initrd_bytes : int;
}

val default : t
(** Xen 3.0-era sizes: ~0.8 MiB hypervisor, ~4 MiB dom0 kernel,
    ~16 MiB initrd. *)

val total_bytes : t -> int

val v : vmm_bytes:int -> dom0_kernel_bytes:int -> initrd_bytes:int -> t

val pp : Format.formatter -> t -> unit
