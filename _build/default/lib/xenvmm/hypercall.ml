type t =
  | Suspend of Domain.id
  | Resume of Domain.id
  | Xexec
  | Domctl_create of Domain.id
  | Domctl_destroy of Domain.id
  | Memory_op of Domain.id
  | Event_channel_op of Domain.id

let name = function
  | Suspend _ -> "suspend"
  | Resume _ -> "resume"
  | Xexec -> "xexec"
  | Domctl_create _ -> "domctl_create"
  | Domctl_destroy _ -> "domctl_destroy"
  | Memory_op _ -> "memory_op"
  | Event_channel_op _ -> "event_channel_op"

let pp ppf t =
  match t with
  | Suspend id | Resume id | Domctl_create id | Domctl_destroy id
  | Memory_op id | Event_channel_op id ->
    Format.fprintf ppf "%s(dom%d)" (name t) id
  | Xexec -> Format.pp_print_string ppf "xexec"
