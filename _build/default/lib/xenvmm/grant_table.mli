(** Grant tables: controlled page sharing between domains.

    Xen domains expose pages to each other through grant entries — the
    basis of split-driver I/O rings and zero-copy networking with dom0
    or driver domains. The invariants the hypervisor enforces are the
    interesting part:

    - only the named grantee may map a grant;
    - a grant cannot be revoked while a mapping is active (the owner's
      page would be yanked from under the grantee);
    - a domain's pages cannot be freed while foreign mappings exist —
      which is why a guest's suspend handler must detach devices (and
      thereby unmap grants) before the domain can be suspended or torn
      down.

    {!release_domain} models that teardown. *)

type t

type grant_ref = int

type access = Read_only | Read_write

type error = [ `Bad_ref | `Wrong_domain | `Revoked | `Still_mapped ]

val error_message : error -> string

val create : unit -> t

val grant :
  t ->
  owner:Domain.id ->
  grantee:Domain.id ->
  pfn:int ->
  ?access:access ->
  unit ->
  grant_ref
(** Owner offers page [pfn] to [grantee]. Raises [Invalid_argument] on
    self-grants. *)

val map : t -> grant_ref -> by:Domain.id -> (unit, error) result
(** Grantee maps the granted page. Double-mapping the same ref is an
    error ([`Still_mapped]). *)

val unmap : t -> grant_ref -> by:Domain.id -> (unit, error) result

val revoke : t -> grant_ref -> by:Domain.id -> (unit, error) result
(** Owner withdraws the grant; refused while mapped. *)

val is_mapped : t -> grant_ref -> bool
val grants_owned_by : t -> Domain.id -> grant_ref list
val mappings_held_by : t -> Domain.id -> grant_ref list

val foreign_mappings_of : t -> Domain.id -> int
(** Active mappings of the domain's pages held by *other* domains — the
    count that must reach zero before its memory may be frozen or
    freed. *)

val release_domain : t -> Domain.id -> unit
(** Device-teardown semantics: unmap every mapping the domain holds and
    revoke (dropping) every grant it owns, unmapping those first. *)

val entries : t -> int
val check_invariants : t -> (unit, string) result
