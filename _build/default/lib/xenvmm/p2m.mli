(** P2M-mapping table: pseudo-physical to machine frame mapping.

    Each domain sees contiguous pseudo-physical memory (physical frame
    numbers, PFNs, numbered from 0) backed by arbitrary machine frames
    (MFNs). The table records PFN→MFN for every page of the domain and is
    the piece of state that makes the warm-VM reboot work: it is placed
    in preserved memory, survives the quick reload, and lets the new VMM
    re-reserve exactly the frames holding each frozen domain's image.

    The table costs 2 MiB per 1 GiB of pseudo-physical memory (8 bytes
    per 4 KiB page), matching the paper's Section 4.1. Entries are added
    when machine frames are allocated to a domain and removed when they
    are deallocated, so it stays correct under ballooning. *)

type t

val create : unit -> t

val add_extent : t -> pfn_first:int -> mfns:Hw.Frame.extent -> unit
(** Map [mfns.count] consecutive PFNs starting at [pfn_first] to the
    machine extent. Raises [Invalid_argument] when any PFN in the range
    is already mapped. *)

val remove_range : t -> pfn_first:int -> count:int -> Hw.Frame.extent list
(** Unmap a PFN range (ballooning down); returns the machine extents
    that backed it. Raises [Invalid_argument] when any PFN in the range
    is unmapped. *)

val lookup : t -> pfn:int -> int option
(** MFN backing a PFN, or [None]. *)

val pages : t -> int
(** Number of mapped pages. *)

val mapped_bytes : t -> int

val table_bytes : t -> int
(** Memory footprint of the table itself: 8 bytes per entry (2 MiB per
    GiB of guest memory). *)

val machine_extents : t -> Hw.Frame.extent list
(** All machine extents backing the domain, in PFN order. This is what
    the new VMM walks after a quick reload to re-reserve the image. *)

val fold : t -> init:'a -> f:('a -> pfn_first:int -> mfns:Hw.Frame.extent -> 'a) -> 'a

val remove_all : t -> Hw.Frame.extent list
(** Unmap everything, returning all backing machine extents (domain
    teardown). *)

val check_invariants : t -> (unit, string) result
(** PFN ranges disjoint and sorted; backing MFN extents disjoint. *)
