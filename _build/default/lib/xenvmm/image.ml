type t = {
  vmm_bytes : int;
  dom0_kernel_bytes : int;
  initrd_bytes : int;
}

let v ~vmm_bytes ~dom0_kernel_bytes ~initrd_bytes =
  if vmm_bytes <= 0 || dom0_kernel_bytes <= 0 || initrd_bytes < 0 then
    invalid_arg "Image.v: non-positive component";
  { vmm_bytes; dom0_kernel_bytes; initrd_bytes }

let default =
  v
    ~vmm_bytes:(800 * 1024)
    ~dom0_kernel_bytes:(4 * 1024 * 1024)
    ~initrd_bytes:(16 * 1024 * 1024)

let total_bytes t = t.vmm_bytes + t.dom0_kernel_bytes + t.initrd_bytes

let pp ppf t =
  Format.fprintf ppf "image(vmm %a, kernel %a, initrd %a)"
    Simkit.Units.pp_bytes t.vmm_bytes Simkit.Units.pp_bytes
    t.dom0_kernel_bytes Simkit.Units.pp_bytes t.initrd_bytes
