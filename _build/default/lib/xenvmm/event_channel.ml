type port = int

type status = Unbound | Bound | Closed

type entry = {
  owner : int;
  mutable state : status;
  mutable handler : (unit -> unit) option;
}

type t = { mutable next_port : int; table : (port, entry) Hashtbl.t }

let create () = { next_port = 1; table = Hashtbl.create 32 }

let alloc_unbound t ~domid =
  let port = t.next_port in
  t.next_port <- port + 1;
  Hashtbl.replace t.table port { owner = domid; state = Unbound; handler = None };
  port

let bind t port ~handler =
  match Hashtbl.find_opt t.table port with
  | None -> invalid_arg "Event_channel.bind: unknown port"
  | Some e -> (
    match e.state with
    | Closed -> invalid_arg "Event_channel.bind: port closed"
    | Unbound | Bound ->
      e.state <- Bound;
      e.handler <- Some handler)

let notify t engine port =
  match Hashtbl.find_opt t.table port with
  | Some { state = Bound; handler = Some h; _ } ->
    ignore (Simkit.Engine.schedule engine ~delay:0.0 h);
    true
  | Some _ | None -> false

let close t port =
  match Hashtbl.find_opt t.table port with
  | None -> ()
  | Some e ->
    e.state <- Closed;
    e.handler <- None

let status t port =
  match Hashtbl.find_opt t.table port with
  | None -> Closed
  | Some e -> e.state

let ports_of t ~domid =
  Hashtbl.fold
    (fun port e acc -> if e.owner = domid then port :: acc else acc)
    t.table []
  |> List.sort compare

let close_all_of t ~domid = List.iter (close t) (ports_of t ~domid)

let snapshot_of t ~domid =
  List.map (fun p -> (p, status t p)) (ports_of t ~domid)

let restore_snapshot t ~domid snap =
  List.iter
    (fun (port, st) ->
      (* Handlers are code, not state: they come back only when the
         guest's resume handler re-binds. *)
      let state = match st with Bound -> Unbound | s -> s in
      Hashtbl.replace t.table port { owner = domid; state; handler = None };
      if port >= t.next_port then t.next_port <- port + 1)
    snap
