(** Hypercall vocabulary, for tracing and aging hooks.

    The simulator counts hypercalls the way the real RootHammer kernel
    issues them; the aging model and the tests key off these events. *)

type t =
  | Suspend of Domain.id  (** guest-issued on-memory suspend *)
  | Resume of Domain.id
  | Xexec  (** load a new VMM image for quick reload *)
  | Domctl_create of Domain.id
  | Domctl_destroy of Domain.id
  | Memory_op of Domain.id  (** balloon / populate physmap *)
  | Event_channel_op of Domain.id

val name : t -> string
val pp : Format.formatter -> t -> unit
