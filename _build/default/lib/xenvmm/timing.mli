(** VMM-side timing constants.

    Calibrated so the simulated host reproduces the paper's Section 5.6
    measurements on the 12 GiB testbed:

    - [reboot_vmm(n) = -0.55 n + 43] — quick-reload path: fixed reload
      cost + scrubbing only *free* memory (0.55 s/GiB; frozen domain
      frames are skipped, hence the negative slope) + dom0 boot.
    - Section 5.2: 11 s quick reload vs 59 s hardware reset between
      "shutdown script completed" and "VMM reboot completed":
      [4.7 + 0.55 * 11.5 = 11] and [47 (POST) + 11 = 58].
    - [resume(n) = 0.43 n - 0.07] — per-domain on-memory resume cost.
    - On-memory suspend: 0.08 s for one 11 GiB VM, 0.04 s for eleven
      1 GiB VMs (serial per-domain freeze, overlapped per-GiB walks). *)

type t = {
  vmm_load_s : float;
      (** Load a VMM image + core init, excluding memory scrubbing.
          Shared by cold boot and quick reload (xexec copies the image
          to the boot address and jumps). *)
  vmm_shutdown_s : float;  (** Orderly VMM shutdown after dom0 is down. *)
  dom0_boot_s : float;
      (** Boot dom0's kernel, xend and xenstored. Dominates
          [reboot_vmm(0)]. *)
  dom0_shutdown_s : float;  (** dom0 shutdown script duration. *)
  domain_create_s : float;  (** xend builds a fresh domain. *)
  domain_destroy_s : float;
  suspend_fixed_s : float;
      (** Serialized per-domain on-memory freeze (hypercall path). *)
  suspend_per_gib_s : float;
      (** Per-GiB freeze walk; overlapped across domains. *)
  resume_fixed_s : float;
      (** Per-domain on-memory unfreeze: re-adopt P2M, restore the saved
          execution state. *)
  resume_per_gib_s : float;  (** P2M walk to re-establish mappings. *)
  save_handler_s : float;
      (** Per-domain bookkeeping around a save-to-disk (traditional
          Xen suspend), excluding the disk transfer itself. *)
  restore_fixed_s : float;
      (** Per-domain bookkeeping around a restore-from-disk, excluding
          the disk transfer. *)
  exec_state_bytes : int;
      (** Saved execution state per domain (CPU context, event-channel
          status, device configuration): 16 KiB in RootHammer. *)
}

val default : t

val suspend_walk_time : t -> mem_bytes:int -> float
val resume_time : t -> mem_bytes:int -> float
(** Uncontended on-memory resume duration for one domain (VMM part). *)
