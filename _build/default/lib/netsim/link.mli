(** Client-server network link.

    A latency + shared-bandwidth pipe between the client host and a
    server NIC, used by workload generators that want wire realism
    beyond the server NIC itself. *)

type t

val create :
  Simkit.Engine.t ->
  ?name:string ->
  latency_ms:float ->
  gbit_per_s:float ->
  unit ->
  t

val name : t -> string
val latency_s : t -> float

val send : t -> bytes:int -> (unit -> unit) -> unit
(** Deliver [bytes]: one propagation latency plus contended wire time. *)

val round_trip : t -> request_bytes:int -> response_bytes:int -> (unit -> unit) -> unit
(** Request out, response back: two latencies plus both transfers. *)

val uncontended_time : t -> bytes:int -> float
