type t = {
  engine : Simkit.Engine.t;
  gen_name : string;
  rate : float;
  rng : Simkit.Rng.t;
  request : (bool -> unit) -> unit;
  mutable running : bool;
  mutable sent : int;
  mutable ok : int;
  mutable failures : float list; (* issue timestamps, newest first *)
}

let create engine ?(name = "poisson") ~rate_per_s ~rng ~request () =
  if rate_per_s <= 0.0 then invalid_arg "Poisson.create: rate <= 0";
  {
    engine;
    gen_name = name;
    rate = rate_per_s;
    rng;
    request;
    running = false;
    sent = 0;
    ok = 0;
    failures = [];
  }

let rec arrival t =
  if t.running then begin
    let delay = Simkit.Rng.exponential t.rng ~mean:(1.0 /. t.rate) in
    ignore
      (Simkit.Engine.schedule t.engine ~delay (fun () ->
           if t.running then begin
             let issued_at = Simkit.Engine.now t.engine in
             t.sent <- t.sent + 1;
             t.request (fun success ->
                 if success then t.ok <- t.ok + 1
                 else t.failures <- issued_at :: t.failures);
             arrival t
           end))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    arrival t
  end

let stop t = t.running <- false

let offered t = t.sent
let succeeded t = t.ok
let lost t = List.length t.failures

let loss_ratio t =
  if t.sent = 0 then 0.0 else float_of_int (lost t) /. float_of_int t.sent

let name t = t.gen_name

let lost_between t ~lo ~hi =
  List.length (List.filter (fun ts -> ts >= lo && ts <= hi) t.failures)
