(** Cluster load balancer (Section 6's setting).

    [m] hosts provide the same service behind a dispatcher; each host
    contributes capacity [p] when healthy, less while degraded (cache
    refill, migration overhead), nothing while rebooting. The balancer
    samples the cluster's deliverable throughput over time — the series
    Figure 9 sketches. *)

type t

type host

val create : Simkit.Engine.t -> unit -> t

val add_host : t -> name:string -> capacity:float -> host

val hosts : t -> host list
val host_name : host -> string
val host_capacity : host -> float

val set_down : host -> unit
val set_up : host -> unit

val set_degraded : host -> factor:float -> unit
(** Host serves [factor * capacity] (0 <= factor <= 1). *)

val is_up : host -> bool

val effective_capacity : host -> float

val total_throughput : t -> float
(** Sum of effective capacities right now. *)

val start_sampling : t -> interval_s:float -> Simkit.Series.t
(** Begin recording [total_throughput] every interval into a fresh
    series (runs until the engine stops or {!stop_sampling}). *)

val stop_sampling : t -> unit
