type host = {
  hname : string;
  capacity : float;
  mutable up : bool;
  mutable factor : float;
}

type t = {
  engine : Simkit.Engine.t;
  mutable members : host list; (* newest first *)
  mutable sampling : bool;
}

let create engine () = { engine; members = []; sampling = false }

let add_host t ~name ~capacity =
  if capacity < 0.0 then invalid_arg "Balancer.add_host: negative capacity";
  let h = { hname = name; capacity; up = true; factor = 1.0 } in
  t.members <- h :: t.members;
  h

let hosts t = List.rev t.members
let host_name h = h.hname
let host_capacity h = h.capacity

let set_down h = h.up <- false

let set_up h =
  h.up <- true;
  h.factor <- 1.0

let set_degraded h ~factor =
  if factor < 0.0 || factor > 1.0 then
    invalid_arg "Balancer.set_degraded: factor outside [0, 1]";
  h.factor <- factor

let is_up h = h.up

let effective_capacity h = if h.up then h.capacity *. h.factor else 0.0

let total_throughput t =
  List.fold_left (fun acc h -> acc +. effective_capacity h) 0.0 t.members

let start_sampling t ~interval_s =
  if interval_s <= 0.0 then invalid_arg "Balancer.start_sampling: interval";
  let series = Simkit.Series.create ~name:"cluster-throughput" () in
  t.sampling <- true;
  let rec tick () =
    if t.sampling then begin
      Simkit.Series.add series
        ~time:(Simkit.Engine.now t.engine)
        (total_throughput t);
      ignore (Simkit.Engine.schedule t.engine ~delay:interval_s tick)
    end
  in
  tick ();
  series

let stop_sampling t = t.sampling <- false
