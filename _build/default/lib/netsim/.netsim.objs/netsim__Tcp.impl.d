lib/netsim/tcp.ml: Float List
