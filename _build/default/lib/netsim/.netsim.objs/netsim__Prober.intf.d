lib/netsim/prober.mli: Simkit
