lib/netsim/prober.ml: Float List Simkit
