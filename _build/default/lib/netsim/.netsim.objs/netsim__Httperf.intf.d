lib/netsim/httperf.mli: Simkit
