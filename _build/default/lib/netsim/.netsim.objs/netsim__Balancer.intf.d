lib/netsim/balancer.mli: Simkit
