lib/netsim/poisson.mli: Simkit
