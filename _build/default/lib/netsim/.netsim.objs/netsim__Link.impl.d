lib/netsim/link.ml: Simkit
