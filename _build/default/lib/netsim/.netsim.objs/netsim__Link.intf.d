lib/netsim/link.mli: Simkit
