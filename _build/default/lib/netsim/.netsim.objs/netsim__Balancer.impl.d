lib/netsim/balancer.ml: List Simkit
