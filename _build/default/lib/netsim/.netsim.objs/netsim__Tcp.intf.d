lib/netsim/tcp.mli:
