lib/netsim/poisson.ml: List Simkit
