lib/netsim/httperf.ml: Float List Simkit
