(** Service-downtime prober.

    Replicates the paper's measurement methodology: a client repeatedly
    probes each VM's service and records "the time from when a networked
    service was down until it was up again". *)

type t

val create :
  Simkit.Engine.t ->
  ?name:string ->
  ?interval_s:float ->
  is_up:(unit -> bool) ->
  unit ->
  t
(** Probe [is_up] every [interval_s] (default 0.1 s) once started. *)

val name : t -> string

val start : t -> unit
val stop : t -> unit

val outages : t -> (float * float) list
(** Completed outage intervals as (down since, up again), oldest
    first. An outage still in progress is not included. *)

val downtimes : t -> float list
(** Durations of completed outages. *)

val total_downtime : t -> float

val longest_outage : t -> float option

val currently_down_since : t -> float option
