(** Open-loop Poisson workload generator.

    Unlike the closed-loop {!Httperf} (which waits for each response
    before sending the next request), an open-loop generator fires
    requests at exponentially distributed intervals regardless of how
    the server is doing — the arrival pattern of independent Internet
    clients. During an outage, requests fail and are counted as lost
    rather than deferred, which is the right model for measuring lost
    work during a rejuvenation. *)

type t

val create :
  Simkit.Engine.t ->
  ?name:string ->
  rate_per_s:float ->
  rng:Simkit.Rng.t ->
  request:((bool -> unit) -> unit) ->
  unit ->
  t
(** [request k] must call [k success] when the attempt resolves. *)

val name : t -> string
val start : t -> unit
val stop : t -> unit

val offered : t -> int
(** Requests issued so far. *)

val succeeded : t -> int
val lost : t -> int

val loss_ratio : t -> float
(** lost / offered; 0 when nothing was offered. *)

val lost_between : t -> lo:float -> hi:float -> int
(** Failures whose *issue* time fell in the window. *)
