type t = {
  engine : Simkit.Engine.t;
  probe_name : string;
  interval : float;
  is_up : unit -> bool;
  mutable running : bool;
  mutable down_since : float option;
  mutable completed : (float * float) list; (* newest first *)
}

let create engine ?(name = "prober") ?(interval_s = 0.1) ~is_up () =
  if interval_s <= 0.0 then invalid_arg "Prober.create: interval <= 0";
  {
    engine;
    probe_name = name;
    interval = interval_s;
    is_up;
    running = false;
    down_since = None;
    completed = [];
  }

let name t = t.probe_name

let probe t =
  let now = Simkit.Engine.now t.engine in
  let up = t.is_up () in
  match (t.down_since, up) with
  | None, false -> t.down_since <- Some now
  | Some since, true ->
    t.completed <- (since, now) :: t.completed;
    t.down_since <- None
  | None, true | Some _, false -> ()

let rec tick t =
  if t.running then begin
    probe t;
    ignore (Simkit.Engine.schedule t.engine ~delay:t.interval (fun () -> tick t))
  end

let start t =
  if not t.running then begin
    t.running <- true;
    tick t
  end

let stop t = t.running <- false

let outages t = List.rev t.completed

let downtimes t = List.map (fun (d, u) -> u -. d) (outages t)

let total_downtime t = List.fold_left ( +. ) 0.0 (downtimes t)

let longest_outage t =
  match downtimes t with
  | [] -> None
  | x :: rest -> Some (List.fold_left Float.max x rest)

let currently_down_since t = t.down_since
