(** TCP session-survival model.

    The paper observes that after a warm-VM or saved-VM reboot the ssh
    session continues "thanks to TCP retransmission", but a 60-second
    client-side timeout kills it during the much longer saved-VM reboot.
    This module computes whether a frozen-then-resumed connection
    survives a given outage, from the retransmission schedule. *)

type config = {
  rto_initial_s : float;  (** first retransmission timeout *)
  rto_max_s : float;  (** exponential backoff cap *)
  max_retries : int;  (** tcp_retries2-style give-up bound *)
}

val default : config
(** Linux-like: 1 s initial RTO, 64 s cap, 15 retries (~ 13 min). *)

val retransmit_offsets : config -> float list
(** Cumulative times (seconds after the first loss) at which
    retransmissions are sent; length [max_retries]. *)

val give_up_after : config -> float
(** Time after which the sender aborts the connection: the instant the
    last retry fires plus one final (capped) wait. *)

val survives : ?config:config -> outage_s:float -> ?client_timeout_s:float -> unit -> bool
(** Does an established session survive a network outage of the given
    length? It dies if the stack gives up first, or if an
    application-level [client_timeout_s] (e.g. an ssh client's
    ServerAliveInterval budget) elapses during the outage. *)

val first_retransmit_after : ?config:config -> outage_s:float -> unit -> float option
(** Delay after recovery until the next retransmission lands (i.e. the
    extra latency the user observes), or [None] when the session died. *)
