type config = {
  rto_initial_s : float;
  rto_max_s : float;
  max_retries : int;
}

let default = { rto_initial_s = 1.0; rto_max_s = 64.0; max_retries = 15 }

let retransmit_offsets cfg =
  let rec go acc elapsed rto n =
    if n = 0 then List.rev acc
    else
      let fire = elapsed +. rto in
      let next_rto = Float.min (rto *. 2.0) cfg.rto_max_s in
      go (fire :: acc) fire next_rto (n - 1)
  in
  go [] 0.0 cfg.rto_initial_s cfg.max_retries

let give_up_after cfg =
  match List.rev (retransmit_offsets cfg) with
  | [] -> cfg.rto_initial_s
  | last :: _ -> last +. cfg.rto_max_s

let survives ?(config = default) ~outage_s ?client_timeout_s () =
  if outage_s < 0.0 then invalid_arg "Tcp.survives: negative outage";
  let stack_alive = outage_s < give_up_after config in
  let client_alive =
    match client_timeout_s with
    | Some limit -> outage_s < limit
    | None -> true
  in
  stack_alive && client_alive

let first_retransmit_after ?(config = default) ~outage_s () =
  if not (survives ~config ~outage_s ()) then None
  else
    match
      List.find_opt (fun off -> off >= outage_s) (retransmit_offsets config)
    with
    | Some off -> Some (off -. outage_s)
    | None -> Some 0.0
