type t = {
  engine : Simkit.Engine.t;
  link_name : string;
  latency : float;
  wire : Simkit.Resource.t;
  bytes_per_s : float;
}

let create engine ?(name = "link") ~latency_ms ~gbit_per_s () =
  if latency_ms < 0.0 then invalid_arg "Link.create: negative latency";
  if gbit_per_s <= 0.0 then invalid_arg "Link.create: non-positive bandwidth";
  let bytes_per_s = gbit_per_s *. 1e9 /. 8.0 in
  {
    engine;
    link_name = name;
    latency = latency_ms /. 1000.0;
    wire = Simkit.Resource.create engine ~name ~capacity:bytes_per_s;
    bytes_per_s;
  }

let name t = t.link_name
let latency_s t = t.latency

let send t ~bytes k =
  if bytes < 0 then invalid_arg "Link.send: negative size";
  ignore
    (Simkit.Resource.submit t.wire ~work:(float_of_int bytes) (fun () ->
         Simkit.Process.delay t.engine t.latency k))

let round_trip t ~request_bytes ~response_bytes k =
  send t ~bytes:request_bytes (fun () -> send t ~bytes:response_bytes k)

let uncontended_time t ~bytes =
  t.latency +. (float_of_int bytes /. t.bytes_per_s)
