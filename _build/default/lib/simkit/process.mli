(** Continuation-passing combinators for multi-step simulated activities.

    A {!task} is an activity that takes time: it receives a continuation
    and must call it exactly once when the activity finishes. Reboot
    procedures compose dozens of such steps — these combinators keep that
    composition readable. *)

type task = (unit -> unit) -> unit
(** [task k] starts the activity and calls [k] on completion. *)

val now : task
(** Completes immediately (synchronously). *)

val delay : Engine.t -> float -> task
(** Completes after a fixed simulated duration. *)

val on_resource : Resource.t -> work:float -> ?weight:float -> unit -> task
(** Completes when the given amount of contended work has been served. *)

val seq : task list -> task
(** Runs tasks one after another. *)

val par : task list -> task
(** Starts all tasks immediately; completes when every one has
    completed. An empty list completes immediately. *)

val map_par : ('a -> task) -> 'a list -> task
(** [par] over [List.map]. *)

val wrap : before:(unit -> unit) -> after:(unit -> unit) -> task -> task
(** Runs [before] when the task starts and [after] just before its
    continuation is invoked. *)

val run : task -> (unit -> unit) -> unit
(** [run t k] is [t k]; reads better at call sites. *)
