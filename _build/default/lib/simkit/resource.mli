(** Processor-sharing resource.

    Models a contended capacity — a CPU complex, a disk's bandwidth, a
    network link — shared among concurrent jobs. Each active job receives
    a rate proportional to its weight:
    [rate(j) = capacity * weight(j) / sum of active weights].

    This is what makes the paper's contention effects emerge naturally:
    booting [n] guest kernels in parallel, each needing [W] units of
    shared work on a unit-capacity resource, completes at time [n * W] —
    the linear-in-[n] boot times of Figure 5. *)

type t

type job
(** An in-flight job. *)

val create : Engine.t -> name:string -> capacity:float -> t
(** A resource delivering [capacity] work units per simulated second.
    Raises [Invalid_argument] when capacity is not positive. *)

val name : t -> string
val capacity : t -> float

val set_capacity : t -> float -> unit
(** Change the delivered rate; in-flight jobs are re-paced from now on.
    Used e.g. to model transient NIC degradation. *)

val submit : t -> work:float -> ?weight:float -> (unit -> unit) -> job
(** [submit t ~work k] enqueues a job needing [work] units and calls [k]
    when it completes. [weight] defaults to 1. Zero-work jobs complete on
    the next engine step. *)

val cancel : t -> job -> unit
(** Abort an in-flight job; its continuation is never called. No-op on
    completed jobs. *)

val active_jobs : t -> int
val total_work_done : t -> float
(** Cumulative work units delivered to completed-or-running jobs. *)

val busy_time : t -> float
(** Total simulated time during which at least one job was active. *)
