type job_state = Active | Completed | Cancelled

type job = {
  mutable remaining : float;
  weight : float;
  on_done : unit -> unit;
  mutable state : job_state;
}

type t = {
  engine : Engine.t;
  name : string;
  mutable capacity : float;
  mutable jobs : job list;
  mutable last_settle : float;
  mutable next_completion : Engine.handle option;
  mutable work_done : float;
  mutable busy : float;
}

let completion_epsilon = 1e-9

let create engine ~name ~capacity =
  if capacity <= 0.0 then invalid_arg "Resource.create: capacity must be > 0";
  {
    engine;
    name;
    capacity;
    jobs = [];
    last_settle = Engine.now engine;
    next_completion = None;
    work_done = 0.0;
    busy = 0.0;
  }

let name t = t.name
let capacity t = t.capacity
let active_jobs t = List.length t.jobs
let total_work_done t = t.work_done
let busy_time t = t.busy

let total_weight t = List.fold_left (fun acc j -> acc +. j.weight) 0.0 t.jobs

(* Account for work delivered since the last state change. Under
   processor sharing each active job progressed at
   [capacity * weight / total_weight]. *)
let settle t =
  let now = Engine.now t.engine in
  let elapsed = now -. t.last_settle in
  if elapsed > 0.0 && t.jobs <> [] then begin
    let tw = total_weight t in
    List.iter
      (fun j ->
        j.remaining <- j.remaining -. (elapsed *. t.capacity *. j.weight /. tw))
      t.jobs;
    t.work_done <- t.work_done +. (elapsed *. t.capacity);
    t.busy <- t.busy +. elapsed
  end;
  t.last_settle <- now

let cancel_pending t =
  match t.next_completion with
  | None -> ()
  | Some h ->
    Engine.cancel t.engine h;
    t.next_completion <- None

let rec reschedule t =
  cancel_pending t;
  match t.jobs with
  | [] -> ()
  | jobs ->
    let tw = total_weight t in
    let time_to_finish j = j.remaining *. tw /. (t.capacity *. j.weight) in
    let dt =
      List.fold_left (fun acc j -> Float.min acc (time_to_finish j))
        infinity jobs
    in
    let dt = Float.max dt 0.0 in
    let handle = Engine.schedule t.engine ~delay:dt (fun () -> on_tick t) in
    t.next_completion <- Some handle

and on_tick t =
  t.next_completion <- None;
  settle t;
  (* Complete every job whose residual *time* is below the scheduling
     granularity. Judging by remaining work alone can livelock: a
     residue slightly above the work epsilon whose finish delay rounds
     to zero would re-arm a same-instant event forever. *)
  let tw = total_weight t in
  let nearly_done j =
    j.remaining <= completion_epsilon
    || j.remaining *. tw /. (t.capacity *. j.weight) <= completion_epsilon
  in
  let finished, still_active = List.partition nearly_done t.jobs in
  t.jobs <- still_active;
  List.iter (fun j -> j.state <- Completed) finished;
  reschedule t;
  (* Continuations run after the resource state is consistent, so they
     may freely submit new jobs. *)
  List.iter (fun j -> j.on_done ()) finished

let submit t ~work ?(weight = 1.0) on_done =
  if weight <= 0.0 then invalid_arg "Resource.submit: weight must be > 0";
  let job = { remaining = Float.max work 0.0; weight; on_done; state = Active } in
  if job.remaining <= 0.0 then begin
    job.state <- Completed;
    ignore (Engine.schedule t.engine ~delay:0.0 on_done)
  end
  else begin
    settle t;
    t.jobs <- job :: t.jobs;
    reschedule t
  end;
  job

let cancel t job =
  match job.state with
  | Completed | Cancelled -> ()
  | Active ->
    settle t;
    job.state <- Cancelled;
    t.jobs <- List.filter (fun j -> j != job) t.jobs;
    reschedule t

let set_capacity t capacity =
  if capacity <= 0.0 then
    invalid_arg "Resource.set_capacity: capacity must be > 0";
  settle t;
  t.capacity <- capacity;
  reschedule t
