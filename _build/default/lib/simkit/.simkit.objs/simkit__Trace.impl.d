lib/simkit/trace.ml: Buffer Char Engine Format Fun List Printf String
