lib/simkit/heap.mli:
