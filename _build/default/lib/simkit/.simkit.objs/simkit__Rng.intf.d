lib/simkit/rng.mli:
