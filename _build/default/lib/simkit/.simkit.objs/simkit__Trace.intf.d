lib/simkit/trace.mli: Engine Format
