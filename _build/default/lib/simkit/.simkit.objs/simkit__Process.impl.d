lib/simkit/process.ml: Engine List Resource
