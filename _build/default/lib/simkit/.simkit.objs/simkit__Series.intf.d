lib/simkit/series.mli:
