lib/simkit/resource.ml: Engine Float List
