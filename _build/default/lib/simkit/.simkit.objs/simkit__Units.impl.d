lib/simkit/units.ml: Float Format
