lib/simkit/stat.mli: Format
