lib/simkit/sampler.ml: Engine List Series Stat
