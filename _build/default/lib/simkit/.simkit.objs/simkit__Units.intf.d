lib/simkit/units.mli: Format
