lib/simkit/series.ml: Array Float List Stdlib
