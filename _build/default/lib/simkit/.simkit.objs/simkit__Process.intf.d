lib/simkit/process.mli: Engine Resource
