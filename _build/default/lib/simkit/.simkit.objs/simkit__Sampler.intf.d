lib/simkit/sampler.mli: Engine Series
