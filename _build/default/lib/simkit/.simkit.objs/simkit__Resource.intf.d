lib/simkit/resource.mli: Engine
