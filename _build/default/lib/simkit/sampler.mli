(** Periodic sampling of a gauge into a {!Series.t}.

    Wraps the schedule-read-reschedule loop used for utilization and
    throughput monitoring. The sampler is a perpetual process: engines
    running it should be driven with [run ~until] or [step], not
    drained. *)

type t

val start :
  Engine.t ->
  ?name:string ->
  interval_s:float ->
  gauge:(unit -> float) ->
  unit ->
  t
(** Begin sampling [gauge] every [interval_s], starting now. *)

val series : t -> Series.t
val stop : t -> unit
val is_running : t -> bool

val samples_between : t -> lo:float -> hi:float -> float list
(** Gauge values observed in a closed time window. *)

val mean_between : t -> lo:float -> hi:float -> float
(** Mean over a window; raises [Invalid_argument] when no samples. *)
