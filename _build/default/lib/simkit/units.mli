(** Byte-size and time helpers shared across the simulator.

    Sizes are plain [int] byte counts (63-bit ints comfortably hold the
    12 GiB testbed). Times are [float] seconds of simulated time. *)

val page_bytes : int
(** Size of one memory page / disk block: 4 KiB, as in x86 Xen. *)

val kib : int -> int
val mib : int -> int
val gib : int -> int

val bytes_to_gib : int -> float
val bytes_to_mib : int -> float

val pages_of_bytes : int -> int
(** Number of 4 KiB pages covering [bytes] (rounds up). *)

val pp_bytes : Format.formatter -> int -> unit
(** Human-readable size, e.g. ["1.5 GiB"]. *)

val pp_seconds : Format.formatter -> float -> unit
(** Human-readable duration, e.g. ["42.0 s"] or ["83 ms"]. *)

val minutes : float -> float
val hours : float -> float
val days : float -> float
val weeks : float -> float
