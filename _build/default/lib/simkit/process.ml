type task = (unit -> unit) -> unit

let now k = k ()

let delay engine duration k =
  ignore (Engine.schedule engine ~delay:duration (fun () -> k ()))

let on_resource resource ~work ?weight () k =
  ignore (Resource.submit resource ~work ?weight k)

let seq tasks k =
  let rec go = function
    | [] -> k ()
    | task :: rest -> task (fun () -> go rest)
  in
  go tasks

let par tasks k =
  match tasks with
  | [] -> k ()
  | _ ->
    let outstanding = ref (List.length tasks) in
    let one_done () =
      decr outstanding;
      if !outstanding = 0 then k ()
    in
    List.iter (fun task -> task one_done) tasks

let map_par f xs = par (List.map f xs)

let wrap ~before ~after task k =
  before ();
  task (fun () ->
      after ();
      k ())

let run task k = task k
