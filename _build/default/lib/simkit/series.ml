type t = { series_name : string; mutable samples : (float * float) list }
(* Samples are kept newest-first and reversed on read. *)

let create ?(name = "series") () = { series_name = name; samples = [] }

let name t = t.series_name

let add t ~time value = t.samples <- (time, value) :: t.samples

let length t = List.length t.samples

let to_list t = List.rev t.samples

let values t = List.rev_map snd t.samples

let last t = match t.samples with [] -> None | s :: _ -> Some s

let between t ~lo ~hi =
  List.filter (fun (time, _) -> time >= lo && time <= hi) (to_list t)

let fold_values f init t =
  List.fold_left (fun acc (_, v) -> f acc v) init t.samples

let min_value t =
  match t.samples with
  | [] -> None
  | (_, v) :: _ -> Some (fold_values Float.min v t)

let max_value t =
  match t.samples with
  | [] -> None
  | (_, v) :: _ -> Some (fold_values Float.max v t)

module Counter = struct
  type t = { counter_name : string; mutable events : float list; mutable count : int }
  (* Timestamps newest-first. *)

  let create ?(name = "counter") () =
    { counter_name = name; events = []; count = 0 }

  let record t ~time =
    t.events <- time :: t.events;
    t.count <- t.count + 1

  let total t = t.count

  let rate_series t ~window ?until () =
    if window <= 0.0 then invalid_arg "Counter.rate_series: window <= 0";
    let events = List.rev t.events in
    let horizon =
      match (until, t.events) with
      | Some u, _ -> u
      | None, latest :: _ -> latest
      | None, [] -> 0.0
    in
    let buckets = int_of_float (Float.ceil (horizon /. window)) in
    let counts = Array.make (Stdlib.max buckets 1) 0 in
    List.iter
      (fun time ->
        let idx = int_of_float (time /. window) in
        if idx >= 0 && idx < Array.length counts then
          counts.(idx) <- counts.(idx) + 1)
      events;
    Array.to_list
      (Array.mapi
         (fun i c ->
           let window_end = float_of_int (i + 1) *. window in
           (window_end, float_of_int c /. window))
         counts)

  let rate_between t ~lo ~hi =
    if hi <= lo then invalid_arg "Counter.rate_between: empty interval";
    let n =
      List.fold_left
        (fun acc time -> if time >= lo && time <= hi then acc + 1 else acc)
        0 t.events
    in
    float_of_int n /. (hi -. lo)
end
