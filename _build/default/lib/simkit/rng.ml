type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

(* splitmix64 finalizer (Steele, Lea & Flood 2014). *)
let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let seed = bits64 t in
  { state = seed }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Mask to the native int's non-negative range before reducing. *)
  let r = Int64.to_int (bits64 t) land max_int in
  r mod bound

let uniform t =
  (* 53 high-quality bits mapped onto [0, 1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let float t x = uniform t *. x

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  let u = uniform t in
  (* [1 - u] avoids log 0. *)
  -.mean *. log (1.0 -. u)
