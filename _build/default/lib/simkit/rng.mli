(** Deterministic splittable pseudo-random number generator (splitmix64).

    Every stochastic choice in the simulator draws from an explicit [Rng.t]
    so that runs are reproducible from a single seed and independent
    subsystems can be given split, non-interfering streams. *)

type t

val create : int -> t
(** [create seed] is a fresh generator. Equal seeds give equal streams. *)

val split : t -> t
(** [split t] derives an independent generator and advances [t]. *)

val copy : t -> t
(** Snapshot of the current state; the copy evolves independently. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val uniform : t -> float
(** Uniform float in [\[0, 1)]. *)

val float : t -> float -> float
(** [float t x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)
