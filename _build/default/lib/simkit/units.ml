let page_bytes = 4096

let kib n = n * 1024
let mib n = n * 1024 * 1024
let gib n = n * 1024 * 1024 * 1024

let bytes_to_gib b = float_of_int b /. 1073741824.0
let bytes_to_mib b = float_of_int b /. 1048576.0

let pages_of_bytes bytes = (bytes + page_bytes - 1) / page_bytes

let pp_bytes ppf b =
  let fb = float_of_int b in
  if fb >= 1073741824.0 then Format.fprintf ppf "%.1f GiB" (fb /. 1073741824.0)
  else if fb >= 1048576.0 then Format.fprintf ppf "%.1f MiB" (fb /. 1048576.0)
  else if fb >= 1024.0 then Format.fprintf ppf "%.1f KiB" (fb /. 1024.0)
  else Format.fprintf ppf "%d B" b

let pp_seconds ppf s =
  if Float.abs s >= 1.0 then Format.fprintf ppf "%.1f s" s
  else Format.fprintf ppf "%.0f ms" (s *. 1000.0)

let minutes m = m *. 60.0
let hours h = h *. 3600.0
let days d = d *. 86400.0
let weeks w = w *. 604800.0
