type t = {
  engine : Engine.t;
  interval : float;
  gauge : unit -> float;
  data : Series.t;
  mutable running : bool;
}

let rec tick t =
  if t.running then begin
    Series.add t.data ~time:(Engine.now t.engine) (t.gauge ());
    ignore (Engine.schedule t.engine ~delay:t.interval (fun () -> tick t))
  end

let start engine ?(name = "sampler") ~interval_s ~gauge () =
  if interval_s <= 0.0 then invalid_arg "Sampler.start: interval <= 0";
  let t =
    {
      engine;
      interval = interval_s;
      gauge;
      data = Series.create ~name ();
      running = true;
    }
  in
  tick t;
  t

let series t = t.data
let stop t = t.running <- false
let is_running t = t.running

let samples_between t ~lo ~hi =
  List.map snd (Series.between t.data ~lo ~hi)

let mean_between t ~lo ~hi =
  match samples_between t ~lo ~hi with
  | [] -> invalid_arg "Sampler.mean_between: no samples in window"
  | xs -> Stat.mean xs
