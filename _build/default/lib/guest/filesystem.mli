(** Guest filesystem: files on a virtual disk read through the page
    cache.

    Reads are split into cached and missing blocks: cached bytes stream
    at memory speed, missing bytes go to the (contended) host disk and
    are inserted into the cache afterwards — which is all the machinery
    the paper's Figure 8 experiments need. *)

type t

type file

type access = Sequential | Random
(** Whether missing blocks are fetched as one sequential run (a large
    file read) or scattered requests (a web server picking files). *)

val create :
  Simkit.Engine.t ->
  disk:Hw.Disk.t ->
  cache:Page_cache.t ->
  ?mem_read_mib_per_s:float ->
  unit ->
  t
(** [mem_read_mib_per_s] defaults to 950 (cached-read bandwidth). *)

val cache : t -> Page_cache.t

val create_file : t -> ?name:string -> bytes:int -> unit -> file
val file_id : file -> int
val file_name : file -> string
val file_bytes : file -> int
val files : t -> file list

val read :
  t -> file -> ?access:access -> (unit -> unit) -> unit
(** Read the whole file; continuation fires when all bytes are in. *)

val read_range :
  t ->
  file ->
  offset:int ->
  bytes:int ->
  ?access:access ->
  (unit -> unit) ->
  unit

val cached_fraction : t -> file -> float
(** Fraction of the file's blocks currently resident. *)

val warm_file : t -> file -> unit
(** Instantly mark the whole file resident — experiment setup ("all
    files were cached on memory"). *)

val uncached_read_time : t -> file -> float
(** Analytic uncontended time to read the file entirely from disk. *)

val cached_read_time : t -> file -> float
