(** Apache HTTP server model.

    Serves files from the guest filesystem through the page cache and
    ships responses over the host NIC. When every requested file is
    resident the server is network-bound; right after a cold reboot the
    cache is empty and every request pays a scattered disk read — the
    69 % throughput drop of Figure 8b. *)

val spec : Service.spec

type t

val install :
  Kernel.t -> nic:Hw.Nic.t -> ?response_overhead_s:float -> unit -> t
(** Create an Apache instance on the kernel, registered as a service.
    [response_overhead_s] models per-request server CPU (default
    0.5 ms). *)

val service : t -> Service.t

val populate :
  t -> file_count:int -> file_bytes:int -> Filesystem.file list
(** Create the document tree ("10,000 files of 512 KB"). *)

val documents : t -> Filesystem.file list

val warm_all : t -> unit
(** Preload every document into the page cache. *)

val handle_request :
  t -> ?file:Filesystem.file -> rng:Simkit.Rng.t -> (bool -> unit) -> unit
(** Serve one request for [file] (default: uniformly random document).
    The continuation receives [false] immediately when the server is
    unreachable (VM suspended / service down / no documents), [true]
    when the response has fully left the NIC. *)

val requests_served : t -> int
