(** Guest operating system kernel (Linux 2.6.12 modified for Xen, in
    the paper's testbed).

    Owns the VM's page cache and filesystem, runs services, and
    registers the suspend/resume handlers that the VMM invokes around
    on-memory and save-to-disk suspends:

    - the suspend handler detaches devices and freezes the services
      (they stop answering the network but are not restarted);
    - the resume handler re-attaches devices, re-binds event channels
      and unfreezes the services — with the page cache intact, which is
      the warm-VM reboot's performance story.

    Boot and shutdown consume work on the host's shared CPU complex, so
    running [n] of them in parallel yields the paper's linear-in-[n]
    times (Section 5.6: [boot(n) = 3.4 n + 2.8]). *)

type timing = {
  boot_shared_work : float;
  boot_private_s : float;
  shutdown_shared_work : float;
  shutdown_private_s : float;
  suspend_handler_s : float;
  resume_handler_s : float;
  cache_fraction : float;
      (** Fraction of VM memory used as page cache ("modern operating
          systems use most of free memory as the file cache"). *)
}

val default_timing : timing

type t

val create : Xenvmm.Vmm.t -> Xenvmm.Domain.t -> ?timing:timing -> unit -> t
(** Builds the kernel for a domain and installs its suspend/resume
    handlers on it. *)

val domain : t -> Xenvmm.Domain.t
val engine : t -> Simkit.Engine.t
val filesystem : t -> Filesystem.t

(** [rebind t vmm dom] re-attaches this kernel to a new domain on a
    (possibly different) VMM — what live migration does when the VM is
    activated on the destination host. Installs the suspend/resume
    handlers on the new domain. The filesystem keeps pointing at the
    same backing store (live migration requires shared storage). Both
    VMMs must share one simulation engine. *)
val rebind : t -> Xenvmm.Vmm.t -> Xenvmm.Domain.t -> unit
val page_cache : t -> Page_cache.t
val timing : t -> timing

val add_service : t -> Service.t -> unit
val services : t -> Service.t list

val make_service : t -> Service.spec -> Service.t
(** Create a service on this kernel's host and register it. *)

val boot : t -> Simkit.Process.task
(** Boot the OS and then start its services in order. Clears the page
    cache (fresh memory) — the cost the warm-VM reboot avoids. *)

val shutdown : t -> Simkit.Process.task
(** Orderly stop of services then OS shutdown. *)

val reboot_os : t -> Simkit.Process.task
(** OS rejuvenation: shutdown followed by boot in the same domain. *)

val balloon : t -> delta_bytes:int -> (unit, Xenvmm.Vmm.error) result
(** The balloon driver: grow (+) or shrink (−) this VM's memory via the
    VMM's memory_op hypercall, resizing the page cache to match. The
    P2M-mapping table tracks the change, so a later on-memory suspend
    preserves exactly the current allocation (the paper's Section 4.1
    ballooning claim). *)

val current_mem_bytes : t -> int
(** Memory currently mapped to the domain (initial size ± balloons). *)

val io_ring_grants : t -> Xenvmm.Grant_table.grant_ref list
(** Grant references of the I/O ring pages currently shared with dom0's
    backend drivers; empty while detached (suspended / shut down). *)

val is_running : t -> bool

val service_reachable : t -> Service.t -> bool
(** What a network client sees: the VM is running and the service
    answers. False while suspended, saved, booting or down. *)
