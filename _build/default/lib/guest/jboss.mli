(** JBoss application server model.

    The paper's heavyweight service: starting it takes tens of seconds
    and contends with every other VM doing the same, which is why the
    cold-VM reboot's downtime grows so steeply with the number of VMs in
    Figure 6b while the warm-VM reboot (which never restarts it) does
    not. Calibrated so one OS rejuvenation with JBoss costs the paper's
    33.6 s and eleven parallel starts add ~84 s over sshd. *)

val spec : Service.spec

val install : Kernel.t -> Service.t
