let spec =
  {
    Service.service_name = "jboss";
    start_shared_work = 7.0;
    start_private_s = 9.5;
    stop_private_s = 4.0;
  }

let install kernel = Kernel.make_service kernel spec
