type spec = {
  service_name : string;
  start_shared_work : float;
  start_private_s : float;
  stop_private_s : float;
}

type state = Down | Starting | Up | Stopping

let state_name = function
  | Down -> "down"
  | Starting -> "starting"
  | Up -> "up"
  | Stopping -> "stopping"

type t = {
  engine : Simkit.Engine.t;
  cpu : Simkit.Resource.t;
  svc_spec : spec;
  mutable svc_state : state;
  mutable observers : (state -> unit) list;
  mutable history : (float * state) list; (* newest first *)
}

let create engine ~cpu spec =
  {
    engine;
    cpu;
    svc_spec = spec;
    svc_state = Down;
    observers = [];
    history = [ (0.0, Down) ];
  }

let spec t = t.svc_spec
let name t = t.svc_spec.service_name
let state t = t.svc_state
let is_up t = t.svc_state = Up

let set_state t s =
  if t.svc_state <> s then begin
    t.svc_state <- s;
    t.history <- (Simkit.Engine.now t.engine, s) :: t.history;
    List.iter (fun f -> f s) (List.rev t.observers)
  end

let on_transition t f = t.observers <- f :: t.observers

let start t k =
  match t.svc_state with
  | Up | Starting -> k ()
  | Down | Stopping ->
    set_state t Starting;
    let finish () =
      Simkit.Process.delay t.engine t.svc_spec.start_private_s (fun () ->
          set_state t Up;
          k ())
    in
    if t.svc_spec.start_shared_work > 0.0 then
      ignore
        (Simkit.Resource.submit t.cpu ~work:t.svc_spec.start_shared_work
           finish)
    else finish ()

let stop t k =
  match t.svc_state with
  | Down | Stopping -> k ()
  | Up | Starting ->
    set_state t Stopping;
    Simkit.Process.delay t.engine t.svc_spec.stop_private_s (fun () ->
        set_state t Down;
        k ())

let kill t = set_state t Down

let force_up t = set_state t Up

let transitions t = List.rev t.history

let total_downtime t ~since ~now =
  if now < since then invalid_arg "Service.total_downtime: empty window";
  (* Fold over transitions, accumulating time not spent Up. *)
  let events = transitions t in
  let state_at time =
    List.fold_left
      (fun acc (tr_time, s) -> if tr_time <= time then s else acc)
      Down events
  in
  let relevant =
    List.filter (fun (tr_time, _) -> tr_time > since && tr_time <= now) events
  in
  let rec go acc cursor cur_state = function
    | [] ->
      if cur_state = Up then acc else acc +. (now -. cursor)
    | (tr_time, s) :: rest ->
      let acc =
        if cur_state = Up then acc else acc +. (tr_time -. cursor)
      in
      go acc tr_time s rest
  in
  go 0.0 since (state_at since) relevant
