(** OpenSSH server model.

    A light service: near-instant start and stop. Used in the paper's
    Figure 6a downtime measurements and for the TCP session-survival
    discussion (a suspended sshd's sessions survive short outages via
    retransmission; an sshd that was shut down loses them). *)

val spec : Service.spec

val install : Kernel.t -> Service.t
(** Create an sshd on the kernel and register it. *)
