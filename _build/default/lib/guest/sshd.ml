let spec =
  {
    Service.service_name = "sshd";
    start_shared_work = 0.05;
    start_private_s = 0.35;
    stop_private_s = 0.3;
  }

let install kernel = Kernel.make_service kernel spec
