lib/guest/kernel.mli: Filesystem Page_cache Service Simkit Xenvmm
