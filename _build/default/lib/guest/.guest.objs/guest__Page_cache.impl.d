lib/guest/page_cache.ml: Hashtbl List Simkit
