lib/guest/sshd.mli: Kernel Service
