lib/guest/filesystem.ml: Hw List Page_cache Printf Simkit Stdlib
