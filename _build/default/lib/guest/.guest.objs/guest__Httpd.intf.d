lib/guest/httpd.mli: Filesystem Hw Kernel Service Simkit
