lib/guest/service.ml: List Simkit
