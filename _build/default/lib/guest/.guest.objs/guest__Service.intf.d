lib/guest/service.mli: Simkit
