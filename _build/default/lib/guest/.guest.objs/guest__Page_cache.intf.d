lib/guest/page_cache.mli:
