lib/guest/httpd.ml: Array Filesystem Hw Kernel List Printf Service Simkit
