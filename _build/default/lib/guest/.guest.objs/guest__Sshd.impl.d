lib/guest/sshd.ml: Kernel Service
