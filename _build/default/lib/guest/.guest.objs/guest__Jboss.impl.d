lib/guest/jboss.ml: Kernel Service
