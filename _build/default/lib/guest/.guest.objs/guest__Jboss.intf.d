lib/guest/jboss.mli: Kernel Service
