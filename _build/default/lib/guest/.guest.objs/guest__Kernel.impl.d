lib/guest/kernel.ml: Filesystem Hw List Page_cache Service Simkit Xenvmm
