lib/guest/filesystem.mli: Hw Page_cache Simkit
