type file = { fid : int; fname : string; size : int }

type access = Sequential | Random

type t = {
  engine : Simkit.Engine.t;
  disk : Hw.Disk.t;
  page_cache : Page_cache.t;
  mem_bytes_per_s : float;
  mutable next_fid : int;
  mutable all_files : file list;
}

let create engine ~disk ~cache ?(mem_read_mib_per_s = 950.0) () =
  {
    engine;
    disk;
    page_cache = cache;
    mem_bytes_per_s = mem_read_mib_per_s *. 1048576.0;
    next_fid = 0;
    all_files = [];
  }

let cache t = t.page_cache

let create_file t ?name ~bytes () =
  if bytes <= 0 then invalid_arg "Filesystem.create_file: bytes <= 0";
  let fid = t.next_fid in
  t.next_fid <- fid + 1;
  let fname =
    match name with Some n -> n | None -> Printf.sprintf "file-%d" fid
  in
  let f = { fid; fname; size = bytes } in
  t.all_files <- f :: t.all_files;
  f

let file_id f = f.fid
let file_name f = f.fname
let file_bytes f = f.size
let files t = List.rev t.all_files

let block_count t f =
  (f.size + Page_cache.block_bytes t.page_cache - 1)
  / Page_cache.block_bytes t.page_cache

let block_of_offset t off = off / Page_cache.block_bytes t.page_cache

let read_range t f ~offset ~bytes ?(access = Sequential) k =
  if offset < 0 || bytes < 0 || offset + bytes > f.size then
    invalid_arg "Filesystem.read_range: out of bounds";
  if bytes = 0 then k ()
  else begin
    let bs = Page_cache.block_bytes t.page_cache in
    let first = block_of_offset t offset in
    let last = block_of_offset t (offset + bytes - 1) in
    let missing = ref [] in
    let hit_blocks = ref 0 in
    for b = first to last do
      if Page_cache.touch t.page_cache ~file:f.fid ~block:b then
        incr hit_blocks
      else missing := b :: !missing
    done;
    let missing = List.rev !missing in
    let hit_bytes = !hit_blocks * bs in
    let miss_bytes = List.length missing * bs in
    let mem_time = float_of_int hit_bytes /. t.mem_bytes_per_s in
    let finish () =
      List.iter (fun b -> Page_cache.insert t.page_cache ~file:f.fid ~block:b)
        missing;
      k ()
    in
    let after_mem () =
      if miss_bytes = 0 then finish ()
      else
        let random = access = Random in
        (* One disk request per contiguous run of missing blocks. *)
        let runs =
          List.fold_left
            (fun (runs, prev) b ->
              match prev with
              | Some p when b = p + 1 -> (runs, Some b)
              | Some _ -> (runs + 1, Some b)
              | None -> (1, Some b))
            (0, None) missing
          |> fst
        in
        Hw.Disk.read t.disk ~bytes:miss_bytes ~random ~ops:(Stdlib.max runs 1)
          finish
    in
    if mem_time > 0.0 then
      Simkit.Process.delay t.engine mem_time after_mem
    else after_mem ()
  end

let read t f ?access k = read_range t f ~offset:0 ~bytes:f.size ?access k

let cached_fraction t f =
  let total = block_count t f in
  if total = 0 then 1.0
  else
    float_of_int (Page_cache.resident_blocks_of t.page_cache ~file:f.fid)
    /. float_of_int total

let warm_file t f =
  for b = 0 to block_count t f - 1 do
    Page_cache.insert t.page_cache ~file:f.fid ~block:b
  done

let uncached_read_time t f = Hw.Disk.sequential_read_time t.disk ~bytes:f.size

let cached_read_time t f = float_of_int f.size /. t.mem_bytes_per_s
