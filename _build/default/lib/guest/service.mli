(** Generic network service running inside a guest OS.

    Captures what the downtime experiments need from sshd, JBoss and
    Apache: how long they take to start (split into work that contends
    with other starting services across VMs, and private latency), how
    long to stop, and whether they are currently answering. JBoss's
    large start cost is exactly why the paper's cold-VM reboot hurts it
    so much more than sshd (Figure 6b). *)

type spec = {
  service_name : string;
  start_shared_work : float;
      (** CPU/disk work units consumed on the host's shared CPU complex
          while starting; booting [n] heavy services in parallel
          contends here. *)
  start_private_s : float;  (** non-contended part of startup *)
  stop_private_s : float;
}

type state = Down | Starting | Up | Stopping

val state_name : state -> string

type t

val create : Simkit.Engine.t -> cpu:Simkit.Resource.t -> spec -> t

val spec : t -> spec
val name : t -> string
val state : t -> state
val is_up : t -> bool

val start : t -> Simkit.Process.task
(** No-op (immediate) when already up or starting. *)

val stop : t -> Simkit.Process.task

val kill : t -> unit
(** Immediate transition to [Down] — what a suspend at the VMM level or
    a crash looks like from the network: the process is frozen/not
    answering without an orderly stop. *)

val force_up : t -> unit
(** Instantly mark up — used when a resumed VM's frozen processes start
    answering again. *)

val on_transition : t -> (state -> unit) -> unit

val total_downtime : t -> since:float -> now:float -> float
(** Accumulated time in states other than [Up] over the window,
    computed from recorded transitions. *)

val transitions : t -> (float * state) list
(** All recorded (time, new state) transitions in time order. *)
